(** FASTA parser.

    [>ACCESSION description] header lines followed by wrapped sequence
    lines. Produces a single-relation catalog
    [entry(entry_id, accession, description, sequence)]. *)

open Aladin_relational

type record = { accession : string; description : string; sequence : string }

val records : string -> record list

val parse : ?name:string -> string -> Catalog.t

val render : record list -> string
(** Inverse of {!records}: sequences wrapped at 60 columns. *)
