(** Swiss-Prot/EMBL-style flat-file parser.

    Produces a BioSQL-like relational representation (paper Figure 3):
    [bioentry] (primary objects), [taxon] (dictionary), [biosequence] (1:1),
    [dbxref] (cross-references), [term] + [bioentry_term] (keyword
    dictionary + bridge), [reference]. Surrogate keys are plain integers;
    accession numbers stay text.

    Recognized line codes: [ID] (entry name), [AC] (accession), [DE]
    (description, continuable), [OS] (organism), [KW] (keywords,
    ';'-separated), [DR] (cross-reference ["DB; ACC."]), [RX] (reference
    ["MEDLINE; 12345."] with optional title after a second ';'), [SQ]
    (header) followed by sequence continuation lines with code [..] or
    plain sequence lines. Records end with ["//"]. *)

open Aladin_relational

val source_name : string
(** "swissprot" — default catalog name. *)

val parse : ?name:string -> ?declare:bool -> string -> Catalog.t
(** Parse a whole document. When [declare] (default false) the importer
    also records the real integrity constraints in the catalog — the
    situation where a source ships its schema; leaving it off forces ALADIN
    to infer everything. *)

val parse_file : ?name:string -> ?declare:bool -> string -> Catalog.t
