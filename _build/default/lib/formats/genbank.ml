open Aladin_relational

type feature = { key : string; location : string; qualifiers : (string * string) list }

type record = {
  locus : string;
  definition : string;
  accession : string;
  organism : string;
  features : feature list;
  origin : string;
}

let empty_record =
  { locus = ""; definition = ""; accession = ""; organism = ""; features = [];
    origin = "" }

type section = Header | In_features | In_origin

let first_token s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | t :: _ -> t
  | [] -> ""

let rest_after_keyword line =
  (* drop the leading keyword column (first 12 chars by convention, but be
     lenient: strip the first token) *)
  let t = String.trim line in
  match String.index_opt t ' ' with
  | Some i -> String.trim (String.sub t i (String.length t - i))
  | None -> ""

let parse_qualifier line =
  (* /key="value" or /key=value or bare /key *)
  let t = String.trim line in
  if String.length t < 2 || t.[0] <> '/' then None
  else
    let body = String.sub t 1 (String.length t - 1) in
    match String.index_opt body '=' with
    | None -> Some (body, "")
    | Some i ->
        let key = String.sub body 0 i in
        let v = String.sub body (i + 1) (String.length body - i - 1) in
        let v =
          let n = String.length v in
          if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
          else v
        in
        Some (key, v)

let clean_origin_line line =
  String.to_seq line
  |> Seq.filter (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
  |> String.of_seq

let records doc =
  let out = ref [] in
  let cur = ref None in
  let section = ref Header in
  let origin_buf = Buffer.create 256 in
  let features_rev : feature list ref = ref [] in
  let flush_feature f = match f with Some ft -> features_rev := ft :: !features_rev | None -> () in
  let open_feature : feature option ref = ref None in
  let finish () =
    match !cur with
    | None -> ()
    | Some r ->
        flush_feature !open_feature;
        open_feature := None;
        out :=
          { r with
            features = List.rev !features_rev;
            origin = Buffer.contents origin_buf }
          :: !out;
        cur := None;
        features_rev := [];
        Buffer.clear origin_buf;
        section := Header
  in
  String.split_on_char '\n' doc
  |> List.iter (fun raw ->
         let trimmed = String.trim raw in
         if trimmed = "//" then finish ()
         else if trimmed = "" then ()
         else begin
           let keyword = first_token raw in
           (* top-level keywords start at column 0 *)
           let top_level = String.length raw > 0 && raw.[0] <> ' ' in
           if top_level && keyword = "LOCUS" then begin
             finish ();
             cur := Some { empty_record with locus = first_token (rest_after_keyword raw) }
           end
           else
             match !cur with
             | None -> ()
             | Some r ->
                 if top_level then begin
                   section := Header;
                   match keyword with
                   | "DEFINITION" ->
                       cur := Some { r with definition = rest_after_keyword raw }
                   | "ACCESSION" ->
                       cur := Some { r with accession = first_token (rest_after_keyword raw) }
                   | "SOURCE" ->
                       cur := Some { r with organism = rest_after_keyword raw }
                   | "FEATURES" -> section := In_features
                   | "ORIGIN" -> section := In_origin
                   | _ -> ()
                 end
                 else begin
                   match !section with
                   | Header ->
                       (* continuation of DEFINITION etc. *)
                       if r.definition <> "" then
                         cur := Some { r with definition = r.definition ^ " " ^ trimmed }
                   | In_origin -> Buffer.add_string origin_buf (clean_origin_line trimmed)
                   | In_features -> (
                       match parse_qualifier trimmed with
                       | Some (k, v) -> (
                           match !open_feature with
                           | Some ft ->
                               open_feature :=
                                 Some { ft with qualifiers = ft.qualifiers @ [ (k, v) ] }
                           | None -> ())
                       | None -> (
                           (* a new feature: "KEY   location" *)
                           match
                             String.split_on_char ' ' trimmed
                             |> List.filter (( <> ) "")
                           with
                           | key :: loc :: _ ->
                               flush_feature !open_feature;
                               open_feature :=
                                 Some { key; location = loc; qualifiers = [] }
                           | [ key ] ->
                               flush_feature !open_feature;
                               open_feature := Some { key; location = ""; qualifiers = [] }
                           | [] -> ()))
                 end
         end);
  finish ();
  List.rev !out

let parse ?(name = "genbank") doc =
  let cat = Catalog.create ~name in
  let entry =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "locus_name"; "definition"; "organism" ])
  in
  let feature_rel =
    Catalog.create_relation cat ~name:"feature"
      (Schema.of_names [ "feature_id"; "entry_id"; "feature_key"; "location" ])
  in
  let qualifier =
    Catalog.create_relation cat ~name:"qualifier"
      (Schema.of_names [ "qualifier_id"; "feature_id"; "qual_key"; "qual_value" ])
  in
  let seqrel =
    Catalog.create_relation cat ~name:"genbank_seq"
      (Schema.of_names [ "entry_id"; "sequence" ])
  in
  let next_feature = ref 1 and next_qual = ref 1 in
  List.iteri
    (fun i r ->
      let eid = i + 1 in
      Relation.insert entry
        [| Value.Int eid; Value.text r.accession; Value.text r.locus;
           Value.text r.definition; Value.text r.organism |];
      List.iter
        (fun ft ->
          let fid = !next_feature in
          incr next_feature;
          Relation.insert feature_rel
            [| Value.Int fid; Value.Int eid; Value.text ft.key;
               Value.text ft.location |];
          List.iter
            (fun (k, v) ->
              Relation.insert qualifier
                [| Value.Int !next_qual; Value.Int fid; Value.text k; Value.text v |];
              incr next_qual)
            ft.qualifiers)
        r.features;
      if r.origin <> "" then
        Relation.insert seqrel
          [| Value.Int eid; Value.text (String.uppercase_ascii r.origin) |])
    (records doc);
  cat

let wrap_origin s =
  let s = String.lowercase_ascii s in
  let buf = Buffer.create (String.length s * 2) in
  let n = String.length s in
  let rec line i =
    if i < n then begin
      Buffer.add_string buf (Printf.sprintf "%9d " (i + 1));
      let stop = min n (i + 60) in
      let rec chunk j =
        if j < stop then begin
          Buffer.add_string buf (String.sub s j (min 10 (stop - j)));
          if j + 10 < stop then Buffer.add_char buf ' ';
          chunk (j + 10)
        end
      in
      chunk i;
      Buffer.add_char buf '\n';
      line (i + 60)
    end
  in
  line 0;
  Buffer.contents buf

let render rs =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun r ->
      add "LOCUS       %s %d bp\n" r.locus (String.length r.origin);
      add "DEFINITION  %s\n" r.definition;
      add "ACCESSION   %s\n" r.accession;
      add "SOURCE      %s\n" r.organism;
      if r.features <> [] then begin
        add "FEATURES             Location/Qualifiers\n";
        List.iter
          (fun ft ->
            add "     %-15s %s\n" ft.key
              (if ft.location = "" then "1" else ft.location);
            List.iter
              (fun (k, v) ->
                if v = "" then add "                     /%s\n" k
                else add "                     /%s=\"%s\"\n" k v)
              ft.qualifiers)
          r.features
      end;
      if r.origin <> "" then begin
        add "ORIGIN\n";
        Buffer.add_string buf (wrap_origin r.origin)
      end;
      add "//\n")
    rs;
  Buffer.contents buf
