open Aladin_relational

let source_name = "swissprot"

type tables = {
  bioentry : Relation.t;
  taxon : Relation.t;
  biosequence : Relation.t;
  dbxref : Relation.t;
  term : Relation.t;
  bioentry_term : Relation.t;
  reference : Relation.t;
}

let make_tables cat =
  let rel name cols =
    Catalog.create_relation cat ~name (Schema.of_names cols)
  in
  (* sequential lets: record-field evaluation order is unspecified, and the
     catalog should list relations in schema order *)
  let bioentry =
    rel "bioentry" [ "bioentry_id"; "accession"; "name"; "description"; "taxon_id" ]
  in
  let taxon = rel "taxon" [ "taxon_id"; "taxon_name" ] in
  let biosequence =
    rel "biosequence" [ "bioentry_id"; "alphabet"; "seq_length"; "biosequence_str" ]
  in
  let dbxref = rel "dbxref" [ "dbxref_id"; "bioentry_id"; "dbname"; "accession" ] in
  let term = rel "term" [ "term_id"; "term_name" ] in
  let bioentry_term = rel "bioentry_term" [ "bioentry_id"; "term_id" ] in
  let reference =
    rel "reference" [ "reference_id"; "bioentry_id"; "medline_id"; "title" ]
  in
  { bioentry; taxon; biosequence; dbxref; term; bioentry_term; reference }

let declare_constraints cat =
  let open Constraint_def in
  List.iter (Catalog.declare cat)
    [
      Primary_key { relation = "bioentry"; attribute = "bioentry_id" };
      Unique { relation = "bioentry"; attribute = "accession" };
      Primary_key { relation = "taxon"; attribute = "taxon_id" };
      Primary_key { relation = "dbxref"; attribute = "dbxref_id" };
      Primary_key { relation = "term"; attribute = "term_id" };
      Primary_key { relation = "reference"; attribute = "reference_id" };
      Foreign_key
        { src_relation = "bioentry"; src_attribute = "taxon_id";
          dst_relation = "taxon"; dst_attribute = "taxon_id" };
      Foreign_key
        { src_relation = "biosequence"; src_attribute = "bioentry_id";
          dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
      Foreign_key
        { src_relation = "dbxref"; src_attribute = "bioentry_id";
          dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
      Foreign_key
        { src_relation = "bioentry_term"; src_attribute = "bioentry_id";
          dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
      Foreign_key
        { src_relation = "bioentry_term"; src_attribute = "term_id";
          dst_relation = "term"; dst_attribute = "term_id" };
      Foreign_key
        { src_relation = "reference"; src_attribute = "bioentry_id";
          dst_relation = "bioentry"; dst_attribute = "bioentry_id" };
    ]

type counters = {
  mutable next_entry : int;
  mutable next_taxon : int;
  mutable next_dbxref : int;
  mutable next_term : int;
  mutable next_ref : int;
  taxa : (string, int) Hashtbl.t;
  terms : (string, int) Hashtbl.t;
}

let fresh_counters () =
  {
    next_entry = 1;
    next_taxon = 1;
    next_dbxref = 1;
    next_term = 1;
    next_ref = 1;
    taxa = Hashtbl.create 16;
    terms = Hashtbl.create 64;
  }

let taxon_id tables counters name =
  match Hashtbl.find_opt counters.taxa name with
  | Some id -> id
  | None ->
      let id = counters.next_taxon in
      counters.next_taxon <- id + 1;
      Hashtbl.add counters.taxa name id;
      Relation.insert tables.taxon [| Value.Int id; Value.text name |];
      id

let term_id tables counters name =
  match Hashtbl.find_opt counters.terms name with
  | Some id -> id
  | None ->
      let id = counters.next_term in
      counters.next_term <- id + 1;
      Hashtbl.add counters.terms name id;
      Relation.insert tables.term [| Value.Int id; Value.text name |];
      id

(* the sequence body is every line after SQ; generators emit wrapped
   sequence lines whose first token parses as the pseudo-code ".." or as a
   bare sequence chunk *)
let record_sequence lines =
  let after_sq = ref false in
  let parts = ref [] in
  List.iter
    (fun (l : Line_format.line) ->
      if l.code = "SQ" then after_sq := true
      else if l.code = ".." then parts := l.payload :: !parts
      else if !after_sq then parts := (l.code ^ l.payload) :: !parts)
    lines;
  String.concat "" (List.rev !parts)

let parse_record tables counters lines =
  let entry_id = counters.next_entry in
  counters.next_entry <- entry_id + 1;
  let name = Option.value (Line_format.joined ~code:"ID" lines) ~default:"" in
  let name =
    match String.index_opt name ' ' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let accession =
    match Line_format.joined ~code:"AC" lines with
    | Some ac -> (match Line_format.split_list ac with a :: _ -> a | [] -> "")
    | None -> ""
  in
  let description = Option.value (Line_format.joined ~code:"DE" lines) ~default:"" in
  let organism = Option.value (Line_format.joined ~code:"OS" lines) ~default:"" in
  let tax = taxon_id tables counters organism in
  Relation.insert tables.bioentry
    [| Value.Int entry_id; Value.text accession; Value.text name;
       Value.text description; Value.Int tax |];
  List.iter
    (fun kw_line ->
      List.iter
        (fun kw ->
          let tid = term_id tables counters kw in
          Relation.insert tables.bioentry_term [| Value.Int entry_id; Value.Int tid |])
        (Line_format.split_list kw_line))
    (Line_format.all ~code:"KW" lines);
  List.iter
    (fun dr ->
      match Line_format.split_list dr with
      | dbname :: acc :: _ ->
          let id = counters.next_dbxref in
          counters.next_dbxref <- id + 1;
          Relation.insert tables.dbxref
            [| Value.Int id; Value.Int entry_id; Value.text dbname; Value.text acc |]
      | [ _ ] | [] -> ())
    (Line_format.all ~code:"DR" lines);
  List.iter
    (fun rx ->
      match Line_format.split_list rx with
      | _medline :: pmid :: rest ->
          let id = counters.next_ref in
          counters.next_ref <- id + 1;
          let title = String.concat "; " rest in
          Relation.insert tables.reference
            [| Value.Int id; Value.Int entry_id; Value.text pmid; Value.text title |]
      | [ _ ] | [] -> ())
    (Line_format.all ~code:"RX" lines);
  let seq = record_sequence lines in
  if seq <> "" then begin
    let alphabet =
      if String.for_all (fun c -> String.contains "ACGTacgt" c) seq then "dna"
      else "protein"
    in
    Relation.insert tables.biosequence
      [| Value.Int entry_id; Value.text alphabet; Value.Int (String.length seq);
         Value.text seq |]
  end

let parse ?(name = source_name) ?(declare = false) doc =
  let cat = Catalog.create ~name in
  let tables = make_tables cat in
  let counters = fresh_counters () in
  List.iter (parse_record tables counters) (Line_format.records doc);
  if declare then declare_constraints cat;
  cat

let parse_file ?name ?declare path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  parse ?name ?declare doc
