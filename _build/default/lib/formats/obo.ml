open Aladin_relational

type term = {
  id : string;
  name : string;
  definition : string;
  namespace : string;
  is_a : string list;
}

let empty_term = { id = ""; name = ""; definition = ""; namespace = ""; is_a = [] }

let tag_value line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let tag = String.sub line 0 i in
      let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Some (tag, v)

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' then
    match String.index_from_opt s 1 '"' with
    | Some j -> String.sub s 1 (j - 1)
    | None -> s
  else s

let terms doc =
  let lines = String.split_on_char '\n' doc in
  let out = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some t when t.id <> "" -> out := t :: !out
    | Some _ | None -> ()
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "[Term]" then begin
        flush ();
        current := Some empty_term
      end
      else if String.length line > 0 && line.[0] = '[' then begin
        (* a non-Term stanza ends any open term *)
        flush ();
        current := None
      end
      else
        match (!current, tag_value line) with
        | Some t, Some ("id", v) -> current := Some { t with id = v }
        | Some t, Some ("name", v) -> current := Some { t with name = v }
        | Some t, Some ("def", v) ->
            current := Some { t with definition = strip_quotes v }
        | Some t, Some ("namespace", v) -> current := Some { t with namespace = v }
        | Some t, Some ("is_a", v) ->
            (* drop trailing "! comment" *)
            let v =
              match String.index_opt v '!' with
              | Some i -> String.trim (String.sub v 0 i)
              | None -> v
            in
            current := Some { t with is_a = t.is_a @ [ v ] }
        | (Some _ | None), _ -> ())
    lines;
  flush ();
  List.rev !out

let parse ?(name = "ontology") doc =
  let cat = Catalog.create ~name in
  let term_rel =
    Catalog.create_relation cat ~name:"term"
      (Schema.of_names [ "term_id"; "acc"; "term_name"; "term_definition"; "namespace" ])
  in
  let isa_rel =
    Catalog.create_relation cat ~name:"term_isa"
      (Schema.of_names [ "term_id"; "parent_id" ])
  in
  let ids = Hashtbl.create 64 in
  let ts = terms doc in
  List.iteri (fun i t -> Hashtbl.replace ids t.id (i + 1)) ts;
  List.iteri
    (fun i t ->
      Relation.insert term_rel
        [| Value.Int (i + 1); Value.text t.id; Value.text t.name;
           Value.text t.definition; Value.text t.namespace |];
      List.iter
        (fun parent ->
          match Hashtbl.find_opt ids parent with
          | Some pid -> Relation.insert isa_rel [| Value.Int (i + 1); Value.Int pid |]
          | None -> ())
        t.is_a)
    ts;
  cat

let render ts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "format-version: 1.2\n\n";
  List.iter
    (fun t ->
      Buffer.add_string buf "[Term]\n";
      Buffer.add_string buf (Printf.sprintf "id: %s\n" t.id);
      Buffer.add_string buf (Printf.sprintf "name: %s\n" t.name);
      if t.namespace <> "" then
        Buffer.add_string buf (Printf.sprintf "namespace: %s\n" t.namespace);
      if t.definition <> "" then
        Buffer.add_string buf (Printf.sprintf "def: \"%s\"\n" t.definition);
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "is_a: %s\n" p))
        t.is_a;
      Buffer.add_char buf '\n')
    ts;
  Buffer.contents buf
