(** GenBank-style flat-file parser (§4.1 names GenBank among the sources
    with readily available parsers).

    Records:
    {v
    LOCUS       KIN1HS       1020 bp    DNA
    DEFINITION  Homo sapiens alpha kinase mRNA, complete cds.
    ACCESSION   AB123456
    SOURCE      Homo sapiens
    FEATURES             Location/Qualifiers
         CDS             1..1020
                         /gene="KIN1"
                         /db_xref="UniProt:P12345"
    ORIGIN
            1 atggcgatcg atcgatcgta
    //
    v}

    Relational mapping: [entry(entry_id, accession, locus_name, definition,
    organism)], [feature(feature_id, entry_id, feature_key, location)],
    [qualifier(qualifier_id, feature_id, qual_key, qual_value)],
    [genbank_seq(entry_id, sequence)]. Qualifiers hang two FK hops below
    the primary relation, so [db_xref] values exercise multi-hop owner
    attribution in link discovery. *)

open Aladin_relational

type feature = { key : string; location : string; qualifiers : (string * string) list }

type record = {
  locus : string;
  definition : string;
  accession : string;
  organism : string;
  features : feature list;
  origin : string;  (** sequence, lowercase stripped of digits/blanks *)
}

val records : string -> record list

val parse : ?name:string -> string -> Catalog.t

val render : record list -> string
(** Inverse of {!records} (sequence wrapped GenBank-style). *)
