(** Purely schema-based matching baseline (the "schema-focused" column of
    Table 1, and the contrast to ALADIN's instance-based link discovery).

    Correspondences between two sources are proposed from attribute/relation
    NAMES only — no data is read. Its failure on generically named columns
    ("accession", "obj_ref") is exactly the paper's argument for using data
    characteristics instead. *)

open Aladin_relational

type correspondence = {
  src_source : string;
  src_relation : string;
  src_attribute : string;
  dst_source : string;
  dst_relation : string;
  dst_attribute : string;
  score : float;
}

val match_attributes :
  ?min_score:float -> Catalog.t -> Catalog.t -> correspondence list
(** Best name-similarity match per source attribute (Jaro-Winkler over
    "relation.attribute" with token bonuses); [min_score] defaults
    to 0.75. *)

val match_corpus : ?min_score:float -> Catalog.t list -> correspondence list
(** All ordered source pairs. *)
