lib/baselines/srs.ml: Aladin_datagen Aladin_links Aladin_relational Array Catalog Hashtbl Link List Objref Option Relation Schema String Value
