lib/baselines/name_matcher.ml: Aladin_relational Aladin_text Catalog Float List Relation Schema String
