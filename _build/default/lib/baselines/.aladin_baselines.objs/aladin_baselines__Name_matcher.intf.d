lib/baselines/name_matcher.mli: Aladin_relational Catalog
