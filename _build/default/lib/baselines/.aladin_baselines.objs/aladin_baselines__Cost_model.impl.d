lib/baselines/cost_model.ml: Aladin_relational Catalog List Relation Schema Srs
