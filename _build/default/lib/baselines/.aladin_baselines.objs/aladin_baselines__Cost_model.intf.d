lib/baselines/cost_model.mli: Aladin_relational Catalog Srs
