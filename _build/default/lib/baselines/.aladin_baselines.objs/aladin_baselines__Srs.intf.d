lib/baselines/srs.mli: Aladin_datagen Aladin_links Aladin_relational Catalog Link
