(** Quantified Table 1: the manual cost of integrating a corpus under each
    of the three approaches.

    Cost is counted in "manual interventions" (a curation decision, a
    mapping rule, a spec line) plus a rough person-minutes estimate, so the
    three columns of the paper's Table 1 become one measured row each. *)

open Aladin_relational

type cost = {
  approach : string;
  manual_interventions : int;
  person_minutes : float;
  notes : string;
}

val minutes_per_curated_row : float
(** 2.0 — reading + merging one record by a human curator. *)

val minutes_per_mapping_rule : float
(** 10.0 — one semantic mapping between schema elements. *)

val minutes_per_spec_item : float
(** 3.0 — one line of an SRS-style parser spec. *)

val minutes_per_parser : float
(** 120.0 — the quick-and-dirty import parser ALADIN may still need (§4.1:
    "writing a parser took only a few hours in both cases"). *)

val data_focused : Catalog.t list -> cost
(** Manual curation of every row. *)

val schema_focused : Catalog.t list -> cost
(** Wrapper per source + mapping rule per attribute (mediator style). *)

val srs_style : Srs.spec list -> cost
(** Spec items from {!Srs.manual_items}, plus a parser per source. *)

val aladin : Catalog.t list -> n_parsers_needed:int -> cost
(** Only the import parsers that had to be written by hand; the rest is
    automatic. *)
