open Aladin_relational
open Aladin_links
module Dg = Aladin_datagen

type xref_spec = {
  relation : string;
  attribute : string;
  target_source : string;
  target_relation : string;
  target_attribute : string;
}

type spec = {
  source : string;
  primary_relation : string;
  accession_attribute : string;
  structure : Dg.Gold.expected_fk list;
  xrefs : xref_spec list;
}

let manual_items spec = 2 + List.length spec.structure + List.length spec.xrefs

let decode_tokens v =
  v
  :: (String.split_on_char ':' v @ String.split_on_char '/' v
     |> List.map String.trim
     |> List.filter (fun s -> s <> "" && s <> v))

let catalog_named catalogs name =
  List.find_opt (fun c -> Catalog.name c = name) catalogs

let accession_set gold catalogs source =
  match Dg.Gold.find_source gold source with
  | None -> None
  | Some sg ->
      let set = Hashtbl.create 256 in
      List.iter (fun (acc, _) -> Hashtbl.replace set acc ()) sg.objects;
      ignore catalogs;
      Some (sg, set)

let spec_of_gold gold ~source catalogs =
  match (Dg.Gold.find_source gold source, catalog_named catalogs source) with
  | None, _ | _, None -> None
  | Some sg, Some cat ->
      let other_sources =
        List.filter_map
          (fun c ->
            let name = Catalog.name c in
            if name = source then None
            else
              Option.map (fun (tsg, set) -> (name, tsg, set))
                (accession_set gold catalogs name))
          catalogs
      in
      let xrefs = ref [] in
      List.iter
        (fun rel ->
          let rel_name = Relation.name rel in
          List.iter
            (fun attr ->
              let is_own_key =
                String.lowercase_ascii rel_name
                = String.lowercase_ascii sg.primary_relation
                && String.lowercase_ascii attr
                   = String.lowercase_ascii sg.accession_attribute
              in
              if not is_own_key then
                List.iter
                  (fun (tname, (tsg : Dg.Gold.source_gold), set) ->
                    let matches = ref 0 in
                    Array.iter
                      (fun v ->
                        if
                          (not (Value.is_null v))
                          && List.exists
                               (fun tok -> Hashtbl.mem set tok)
                               (decode_tokens (Value.to_string v))
                        then incr matches)
                      (Relation.column rel attr);
                    if !matches >= 2 then
                      xrefs :=
                        { relation = rel_name; attribute = attr;
                          target_source = tname;
                          target_relation = tsg.primary_relation;
                          target_attribute = tsg.accession_attribute }
                        :: !xrefs)
                  other_sources)
            (Schema.names (Relation.schema rel)))
        (Catalog.relations cat);
      Some
        {
          source;
          primary_relation = sg.primary_relation;
          accession_attribute = sg.accession_attribute;
          structure = sg.fks;
          xrefs = List.rev !xrefs;
        }

(* map a row of [relation] to its primary accessions by following one
   declared join hop (xref tables point directly at the primary relation in
   the generated schemas; deeper structures fall back to no owner) *)
let owner_accessions cat spec rel_name row =
  if String.lowercase_ascii rel_name = String.lowercase_ascii spec.primary_relation
  then begin
    let prel = Catalog.find_exn cat spec.primary_relation in
    let ai = Schema.index_of_exn (Relation.schema prel) spec.accession_attribute in
    [ Value.to_string row.(ai) ]
  end
  else
    match
      List.find_opt
        (fun (fk : Dg.Gold.expected_fk) ->
          String.lowercase_ascii fk.src_relation = String.lowercase_ascii rel_name
          && String.lowercase_ascii fk.dst_relation
             = String.lowercase_ascii spec.primary_relation)
        spec.structure
    with
    | None -> []
    | Some fk -> (
        let rel = Catalog.find_exn cat rel_name in
        let si = Schema.index_of_exn (Relation.schema rel) fk.src_attribute in
        let prel = Catalog.find_exn cat spec.primary_relation in
        let join_v = row.(si) in
        if Value.is_null join_v then []
        else
          match Relation.find_row prel fk.dst_attribute join_v with
          | None -> []
          | Some prow ->
              let ai =
                Schema.index_of_exn (Relation.schema prel) spec.accession_attribute
              in
              [ Value.to_string prow.(ai) ])

let integrate catalogs specs =
  let links = ref [] in
  List.iter
    (fun spec ->
      match catalog_named catalogs spec.source with
      | None -> ()
      | Some cat ->
          List.iter
            (fun xs ->
              match
                ( Catalog.find cat xs.relation,
                  List.find_opt (fun s -> s.source = xs.target_source) specs )
              with
              | Some rel, Some tspec -> (
                  match catalog_named catalogs xs.target_source with
                  | None -> ()
                  | Some tcat ->
                      let tprel = Catalog.find_exn tcat tspec.primary_relation in
                      let tset = Hashtbl.create 256 in
                      Array.iter
                        (fun v ->
                          if not (Value.is_null v) then
                            Hashtbl.replace tset (Value.to_string v) ())
                        (Relation.column tprel tspec.accession_attribute);
                      let ai = Schema.index_of_exn (Relation.schema rel) xs.attribute in
                      Relation.iter_rows
                        (fun row ->
                          let v = row.(ai) in
                          if not (Value.is_null v) then
                            let tok =
                              List.find_opt
                                (fun t -> Hashtbl.mem tset t)
                                (decode_tokens (Value.to_string v))
                            in
                            match tok with
                            | None -> ()
                            | Some acc ->
                                List.iter
                                  (fun own_acc ->
                                    links :=
                                      Link.make
                                        ~src:
                                          (Objref.make ~source:spec.source
                                             ~relation:spec.primary_relation
                                             ~accession:own_acc)
                                        ~dst:
                                          (Objref.make ~source:xs.target_source
                                             ~relation:tspec.primary_relation
                                             ~accession:acc)
                                        ~kind:Link.Xref ~confidence:1.0
                                        ~evidence:"srs spec"
                                      :: !links)
                                  (owner_accessions cat spec xs.relation row))
                        rel)
              | (Some _ | None), _ -> ())
            spec.xrefs)
    specs;
  Link.dedup !links
