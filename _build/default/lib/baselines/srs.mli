(** SRS-style baseline (§2, §6.1): integration through fully explicit,
    manually written source specifications.

    "In SRS all structures and links need to be explicitly specified and no
    automatic integration takes place." A {!spec} is what the human writes
    in the (here: declarative instead of Icarus) parser description:
    primary relation, key field, internal structure, and which fields are
    cross-references to which database. The baseline integrates perfectly
    within its specs — at the cost of every entry being manual work. *)

open Aladin_relational
open Aladin_links

type xref_spec = {
  relation : string;
  attribute : string;
  target_source : string;
  target_relation : string;
  target_attribute : string;
}

type spec = {
  source : string;
  primary_relation : string;
  accession_attribute : string;
  structure : Aladin_datagen.Gold.expected_fk list;  (** declared joins *)
  xrefs : xref_spec list;
}

val manual_items : spec -> int
(** Number of hand-written specification entries: 1 (primary) + 1 (key) +
    joins + xref tags — the Table 1 cost unit. *)

val spec_of_gold :
  Aladin_datagen.Gold.t -> source:string -> Catalog.t list -> spec option
(** The spec a domain expert with perfect knowledge would write for a
    generated source: gold structure plus xref tags derived by probing
    which attribute physically holds which target's accessions. *)

val integrate : Catalog.t list -> spec list -> Link.t list
(** Follow exactly the specified xref fields (exact and DB:ACC-encoded
    values); no discovery, no duplicates, no implicit links. *)
