open Aladin_relational
module Tx = Aladin_text

type correspondence = {
  src_source : string;
  src_relation : string;
  src_attribute : string;
  dst_source : string;
  dst_relation : string;
  dst_attribute : string;
  score : float;
}

let tokens name =
  String.split_on_char '_' (String.lowercase_ascii name)
  |> List.filter (fun t -> t <> "")

let name_score (r1, a1) (r2, a2) =
  let jw = Tx.Strdist.jaro_winkler (String.lowercase_ascii a1) (String.lowercase_ascii a2) in
  let t1 = tokens a1 @ tokens r1 and t2 = tokens a2 @ tokens r2 in
  let shared = List.filter (fun t -> List.mem t t2) t1 in
  let bonus = if shared <> [] then 0.1 else 0.0 in
  Float.min 1.0 (jw +. bonus)

let attributes cat =
  List.concat_map
    (fun rel ->
      List.map
        (fun attr -> (Relation.name rel, attr))
        (Schema.names (Relation.schema rel)))
    (Catalog.relations cat)

let match_attributes ?(min_score = 0.75) a b =
  let bs = attributes b in
  attributes a
  |> List.filter_map (fun (ra, aa) ->
         let best =
           List.fold_left
             (fun acc (rb, ab) ->
               let s = name_score (ra, aa) (rb, ab) in
               match acc with
               | Some (_, _, sb) when sb >= s -> acc
               | Some _ | None -> Some (rb, ab, s))
             None bs
         in
         match best with
         | Some (rb, ab, s) when s >= min_score ->
             Some
               { src_source = Catalog.name a; src_relation = ra;
                 src_attribute = aa; dst_source = Catalog.name b;
                 dst_relation = rb; dst_attribute = ab; score = s }
         | Some _ | None -> None)

let match_corpus ?min_score catalogs =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          if Catalog.name a = Catalog.name b then []
          else match_attributes ?min_score a b)
        catalogs)
    catalogs
