open Aladin_relational

type cost = {
  approach : string;
  manual_interventions : int;
  person_minutes : float;
  notes : string;
}

let minutes_per_curated_row = 2.0

let minutes_per_mapping_rule = 10.0

let minutes_per_spec_item = 3.0

let minutes_per_parser = 120.0

let total_rows catalogs =
  List.fold_left (fun acc c -> acc + Catalog.total_rows c) 0 catalogs

let total_attributes catalogs =
  List.fold_left
    (fun acc c ->
      acc
      + List.fold_left
          (fun acc r -> acc + Schema.arity (Relation.schema r))
          0 (Catalog.relations c))
    0 catalogs

let data_focused catalogs =
  let rows = total_rows catalogs in
  {
    approach = "data-focused (Swiss-Prot style)";
    manual_interventions = rows;
    person_minutes = float_of_int rows *. minutes_per_curated_row;
    notes = "every row curated by hand";
  }

let schema_focused catalogs =
  let attrs = total_attributes catalogs in
  let n = List.length catalogs in
  {
    approach = "schema-focused (TAMBIS/OPM style)";
    manual_interventions = attrs + n;
    person_minutes =
      (float_of_int attrs *. minutes_per_mapping_rule)
      +. (float_of_int n *. minutes_per_parser);
    notes = "wrapper per source + mapping per attribute";
  }

let srs_style specs =
  let items = List.fold_left (fun acc s -> acc + Srs.manual_items s) 0 specs in
  let n = List.length specs in
  {
    approach = "SRS (explicit specification)";
    manual_interventions = items + n;
    person_minutes =
      (float_of_int items *. minutes_per_spec_item)
      +. (float_of_int n *. minutes_per_parser);
    notes = "Icarus-style spec per source";
  }

let aladin catalogs ~n_parsers_needed =
  ignore catalogs;
  {
    approach = "ALADIN (almost automatic)";
    manual_interventions = n_parsers_needed;
    person_minutes = float_of_int n_parsers_needed *. minutes_per_parser;
    notes = "only missing import parsers are manual";
  }
