examples/microarray_browse.mli:
