examples/incremental_integration.mli:
