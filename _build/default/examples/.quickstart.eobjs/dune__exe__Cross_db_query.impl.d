examples/cross_db_query.ml: Aladin Aladin_access Aladin_datagen Aladin_links Aladin_relational Aladin_system Array Filename Float Format List Printf Relation Value Warehouse
