examples/microarray_browse.ml: Aladin Aladin_access Aladin_datagen Aladin_links Aladin_system List Printf Warehouse
