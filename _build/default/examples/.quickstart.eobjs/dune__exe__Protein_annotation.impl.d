examples/protein_annotation.ml: Aladin Aladin_access Aladin_datagen Aladin_links Aladin_system List Printf Warehouse
