examples/cross_db_query.mli:
