examples/protein_annotation.mli:
