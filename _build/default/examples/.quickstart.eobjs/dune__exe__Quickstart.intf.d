examples/quickstart.mli:
