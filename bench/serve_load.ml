(* Load generator for [aladin serve] (BENCH_serve.json).

   Two phases:

   - socket: the server is forked with its own domain pool, then C client
     processes hammer it concurrently over a fixed target mix; we report
     throughput, per-request latency percentiles and the failure count
     (which must be zero below the admission limit).

   - in-process: the same target mix is run straight through
     Service.handle twice — a cold pass (empty cache) and a cached pass —
     isolating the response cache's effect on the hot path from socket
     overhead. The headline number is cold p50 / cached p50.

   Forks happen before any domain is spawned in the parent (integration
   runs with domains = 1; the server and the in-process phase create
   their pools after forking), so no process ever inherits dead worker
   domains.

     dune exec bench/serve_load.exe *)

open Aladin
module Dg = Aladin_datagen
module Serve = Aladin_serve
module Pool = Aladin_par.Pool
module Clock = Aladin_obs.Clock

let clients = 4
let passes = 3

(* --- percentiles --- *)

let percentile xs q =
  match xs with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

(* --- the target mix --- *)

let req_of_target target =
  match Serve.Http.parse_request (Printf.sprintf "GET %s HTTP/1.1\r\n" target) with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let take n xs = List.filteri (fun i _ -> i < n) xs

let targets_of eng =
  let objs = Engine.objects eng in
  let searches =
    objs
    |> List.filteri (fun i _ -> i mod 5 = 0)
    |> take 50
    |> List.filter_map (fun o ->
           match Engine.view eng o with
           | Some v -> (
               match List.assoc_opt "name" v.fields with
               | Some name when name <> "" ->
                   Some ("/search?q=" ^ Serve.Http.pct_encode name)
               | Some _ | None -> None)
           | None -> None)
  in
  let pages =
    objs
    |> List.filteri (fun i _ -> i mod 11 = 0)
    |> take 25
    |> List.map (fun (o : Aladin_links.Objref.t) ->
           Printf.sprintf "/object/%s/%s" o.source (Serve.Http.pct_encode o.accession))
  in
  let resolves =
    objs
    |> List.filteri (fun i _ -> i mod 31 = 0)
    |> take 10
    |> List.map (fun (o : Aladin_links.Objref.t) ->
           "/resolve?accession=" ^ Serve.Http.pct_encode o.accession)
  in
  let queries =
    List.map
      (fun sql -> "/query?sql=" ^ Serve.Http.pct_encode sql)
      [
        "SELECT * FROM uniprot.entry";
        "SELECT accession FROM uniprot.entry JOIN uniprot.sequence_data ON \
         uniprot.entry.entry_id = uniprot.sequence_data.entry_id";
        "SELECT organism_name, COUNT(*) FROM genedb.gene JOIN genedb.organism \
         ON genedb.gene.organism_id = genedb.organism.organism_id GROUP BY \
         organism_name";
      ]
  in
  searches @ pages @ resolves @ queries @ [ "/links?kind=xref" ]

(* --- socket phase --- *)

let fork_server eng =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let pool = Pool.create ~domains:4 () in
      let service =
        Serve.Service.create ~pool
          ~config:{ Serve.Service.default_config with cache_capacity = 2048 }
          eng
      in
      let cfg = { Serve.Server.default_config with port = 0; max_queue = 256 } in
      let on_ready port =
        let line = string_of_int port ^ "\n" in
        ignore (Unix.write_substring w line 0 (String.length line));
        Unix.close w
      in
      let (_ : Serve.Server.stats) = Serve.Server.run ~config:cfg ~on_ready service in
      exit 0
  | pid ->
      Unix.close w;
      let buf = Bytes.create 16 in
      let n = Unix.read r buf 0 16 in
      Unix.close r;
      let port = int_of_string (String.trim (Bytes.sub_string buf 0 n)) in
      (pid, port)

let client_worker ~port ~out targets =
  let oc = open_out out in
  for _ = 1 to passes do
    List.iter
      (fun target ->
        let t0 = Clock.now () in
        let status =
          match Serve.Client.request ~port target with
          | Ok resp -> resp.Serve.Http.status
          | Error _ -> 0
        in
        Printf.fprintf oc "%d %.6f\n" status (Clock.now () -. t0))
      targets
  done;
  close_out oc

let socket_phase eng targets =
  let server_pid, port = fork_server eng in
  let outs =
    List.init clients (fun i ->
        Filename.temp_file (Printf.sprintf "serve_load_%d_" i) ".txt")
  in
  let t0 = Clock.now () in
  let pids =
    List.map
      (fun out ->
        match Unix.fork () with
        | 0 ->
            client_worker ~port ~out targets;
            exit 0
        | pid -> pid)
      outs
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  let wall = Clock.now () -. t0 in
  Unix.kill server_pid Sys.sigterm;
  ignore (Unix.waitpid [] server_pid);
  let latencies = ref [] and failures = ref 0 and total = ref 0 in
  List.iter
    (fun out ->
      let ic = open_in out in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ status; secs ] ->
               incr total;
               if int_of_string status <> 200 then incr failures;
               latencies := float_of_string secs :: !latencies
           | _ -> ()
         done
       with End_of_file -> ());
      close_in ic;
      Sys.remove out)
    outs;
  (!total, !failures, wall, !latencies)

(* --- in-process phase --- *)

let in_process_phase eng targets =
  let pool = Pool.create ~domains:4 () in
  let service =
    Serve.Service.create ~pool
      ~config:{ Serve.Service.default_config with cache_capacity = 2048 }
      eng
  in
  let reqs = List.map req_of_target targets in
  let pass () =
    List.map
      (fun req ->
        let resp, secs = Clock.timed (fun () -> Serve.Service.handle service req) in
        assert (resp.Serve.Http.status = 200);
        secs)
      reqs
  in
  let cold = pass () in
  let cached = pass () in
  let stats = Serve.Service.cache_stats service in
  (cold, cached, stats)

(* --- driver --- *)

let () =
  Printf.printf "integrating corpus (sequential, pre-fork)...\n%!";
  let corpus = Dg.Corpus.generate Dg.Corpus.default_params in
  let w =
    Warehouse.integrate ~config:{ Config.default with domains = 1 } corpus.catalogs
  in
  let eng = Engine.create w in
  let targets = targets_of eng in
  Printf.printf "%d targets, %d clients x %d passes over the socket\n%!"
    (List.length targets) clients passes;

  let total, failures, wall, latencies = socket_phase eng targets in
  Printf.printf
    "socket: %d requests in %.2fs (%.0f req/s), %d failures, p50 %.6fs p99 %.6fs\n%!"
    total wall
    (float_of_int total /. wall)
    failures
    (percentile latencies 0.5)
    (percentile latencies 0.99);

  let cold, cached, cstats = in_process_phase eng targets in
  let eps = 1e-7 in
  let cold_p50 = percentile cold 0.5 in
  let cached_p50 = percentile cached 0.5 in
  let speedup = cold_p50 /. Float.max eps cached_p50 in
  Printf.printf
    "in-process: cold p50 %.6fs p95 %.6fs p99 %.6fs | cached p50 %.6fs p95 \
     %.6fs p99 %.6fs | p50 speedup %.1fx (cache: %d hits / %d misses)\n%!"
    cold_p50
    (percentile cold 0.95)
    (percentile cold 0.99)
    cached_p50
    (percentile cached 0.95)
    (percentile cached 0.99)
    speedup cstats.hits cstats.misses;

  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"serve\",\n\
      \  \"targets\": %d,\n\
      \  \"socket\": {\n\
      \    \"clients\": %d,\n\
      \    \"passes\": %d,\n\
      \    \"requests\": %d,\n\
      \    \"failures\": %d,\n\
      \    \"wall_seconds\": %.6f,\n\
      \    \"requests_per_second\": %.1f,\n\
      \    \"p50_seconds\": %.6f,\n\
      \    \"p95_seconds\": %.6f,\n\
      \    \"p99_seconds\": %.6f\n\
      \  },\n\
      \  \"in_process\": {\n\
      \    \"cold\": { \"p50_seconds\": %.6f, \"p95_seconds\": %.6f, \
       \"p99_seconds\": %.6f },\n\
      \    \"cached\": { \"p50_seconds\": %.6f, \"p95_seconds\": %.6f, \
       \"p99_seconds\": %.6f },\n\
      \    \"cached_speedup_p50\": %.1f,\n\
      \    \"cache_hits\": %d,\n\
      \    \"cache_misses\": %d\n\
      \  }\n\
       }\n"
      (List.length targets) clients passes total failures wall
      (float_of_int total /. wall)
      (percentile latencies 0.5)
      (percentile latencies 0.95)
      (percentile latencies 0.99)
      cold_p50
      (percentile cold 0.95)
      (percentile cold 0.99)
      cached_p50
      (percentile cached 0.95)
      (percentile cached 0.99)
      speedup cstats.hits cstats.misses
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n"
