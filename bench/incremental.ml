(* Incremental-integration bench (BENCH_incremental.json): what the
   per-source-pair delta store buys over a full rebuild.

     dune exec bench/incremental.exe

   Three measurements over a 10x ~9-source corpus:
     cold        integrate every source from scratch
     add-one     integrate N-1 sources, then add the last (timed alone)
     update-one  replace a middle source in place on a warm warehouse

   The delta contract is asserted, not assumed: both incremental paths
   must land on the byte-identical link CSV of the cold rebuild, and a
   warm serve-layer cache entry over one source must survive an update
   of an unrelated source (typed invalidation). *)

open Aladin
module Dg = Aladin_datagen
module Serve = Aladin_serve

let timed = Aladin_obs.Clock.timed

let corpus_params =
  {
    Dg.Corpus.default_params with
    universe =
      { Dg.Universe.default_params with n_proteins = 600; n_genes = 300;
        n_structures = 250; n_diseases = 100; n_terms = 160; n_families = 80 };
    n_protein_sources = 3;
    include_structures = true;
    include_genes = true;
    include_diseases = true;
    include_ontology = true;
    include_interactions = true;
  }

let render w = Aladin_access.Link_export.to_csv (Warehouse.links w)

let req target =
  match
    Serve.Http.parse_request (Printf.sprintf "GET %s HTTP/1.1\r\n" target)
  with
  | Ok r -> r
  | Error msg -> failwith msg

(* a warm cached /query over one source must keep serving hits across an
   update of a different source — the typed generation key at work *)
let warm_cache_survives (corpus : Dg.Corpus.t) =
  let eng = Engine.integrate corpus.catalogs in
  let service = Serve.Service.create eng in
  let r = req "/query?sql=SELECT%20*%20FROM%20uniprot.entry" in
  ignore (Serve.Service.handle service r);
  let unrelated =
    List.find
      (fun c -> Aladin_relational.Catalog.name c = "pdb")
      corpus.catalogs
  in
  ignore
    (Engine.update_source eng unrelated
       ~changed_rows:(Aladin_relational.Catalog.total_rows unrelated));
  let after = Serve.Service.handle service r in
  List.assoc_opt "x-cache" after.Serve.Http.headers = Some "hit"

let () =
  let corpus = Dg.Corpus.generate corpus_params in
  let catalogs = corpus.catalogs in
  let n = List.length catalogs in
  Printf.printf "corpus: %d sources\n%!" n;

  let cold_w, cold_seconds = timed (fun () -> Warehouse.integrate catalogs) in
  let cold_links = render cold_w in
  Printf.printf "cold integrate (%d sources): %.3fs, %d links\n%!" n
    cold_seconds
    (List.length (Warehouse.links cold_w));

  (* add-one: the base N-1 integration is setup, only the add is timed *)
  let rec split_last = function
    | [] | [ _ ] -> invalid_arg "corpus too small"
    | [ x; last ] -> ([ x ], last)
    | x :: rest ->
        let init, last = split_last rest in
        (x :: init, last)
  in
  let init, last = split_last catalogs in
  let add_w = Warehouse.integrate init in
  let _, add_one_seconds = timed (fun () -> Warehouse.add_source add_w last) in
  let add_identical = render add_w = cold_links in
  let add_audit = Warehouse.last_delta add_w in
  Printf.printf "add-one (%s): %.3fs (%.1f%% of cold), identical links: %b\n%!"
    (Aladin_relational.Catalog.name last)
    add_one_seconds
    (100.0 *. add_one_seconds /. cold_seconds)
    add_identical;

  (* update-one: replace a middle source in place on the warm warehouse *)
  let upd_w = Warehouse.integrate catalogs in
  let middle = List.nth catalogs (n / 2) in
  let upd, update_one_seconds =
    timed (fun () ->
        Warehouse.update_source upd_w middle
          ~changed_rows:(Aladin_relational.Catalog.total_rows middle))
  in
  (match upd.Warehouse.outcome with
  | `Reanalyzed _ -> ()
  | `Deferred -> failwith "full-source update was deferred");
  let update_identical = render upd_w = cold_links in
  Printf.printf
    "update-one (%s): %.3fs (%.1f%% of cold), identical links: %b\n%!"
    (Aladin_relational.Catalog.name middle)
    update_one_seconds
    (100.0 *. update_one_seconds /. cold_seconds)
    update_identical;

  let cache_ok = warm_cache_survives corpus in
  Printf.printf "warm cache survives unrelated update: %b\n%!" cache_ok;

  let audit_json =
    match add_audit with
    | None -> "null"
    | Some a ->
        Printf.sprintf "{ \"recomputed_pairs\": %d, \"reused_pairs\": %d }"
          (List.length a.Delta.recomputed_pairs)
          (List.length a.Delta.reused_pairs)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"incremental\",\n\
      \  \"corpus_seed\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"sources\": %d,\n\
      \  \"cold_seconds\": %.6f,\n\
      \  \"add_one_seconds\": %.6f,\n\
      \  \"add_ratio\": %.4f,\n\
      \  \"add_delta\": %s,\n\
      \  \"update_one_seconds\": %.6f,\n\
      \  \"update_ratio\": %.4f,\n\
      \  \"links_identical\": %b,\n\
      \  \"warm_cache_survives\": %b\n\
       }\n"
      corpus_params.Dg.Corpus.seed
      (Domain.recommended_domain_count ())
      n cold_seconds add_one_seconds
      (add_one_seconds /. cold_seconds)
      audit_json update_one_seconds
      (update_one_seconds /. cold_seconds)
      (add_identical && update_identical)
      cache_ok
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_incremental.json\n";
  if not (add_identical && update_identical) then exit 1
