(* Experiment harness: regenerates every table/figure of the paper and the
   precision/recall evaluation the paper specifies (see DESIGN.md §4 and
   EXPERIMENTS.md).

     dune exec bench/main.exe             run every experiment
     dune exec bench/main.exe -- table1   one experiment (E-id or name)
     dune exec bench/main.exe -- micro    bechamel microbenchmarks *)

open Aladin
module Dg = Aladin_datagen
module Lk = Aladin_links
module Ds = Aladin_discovery
module Dup = Aladin_dup
module Ev = Aladin_eval
module Bl = Aladin_baselines
module Rel = Aladin_relational

(* ------------------------------------------------------------------ *)
(* shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let small_universe =
  { Dg.Universe.default_params with n_proteins = 60; n_genes = 30;
    n_structures = 25; n_diseases = 10; n_terms = 16; n_families = 8 }

let default_corpus_params =
  { Dg.Corpus.default_params with universe = small_universe }

let obj_key (o : Lk.Objref.t) = o.source ^ ":" ^ o.accession

let link_pair_keys kind links =
  links
  |> List.filter (fun (l : Lk.Link.t) -> l.kind = kind)
  |> List.map (fun (l : Lk.Link.t) ->
         Ev.Metrics.pair_key (obj_key l.src) (obj_key l.dst))

let gold_xref_keys (gold : Dg.Gold.t) =
  List.map (fun (a, b) -> Ev.Metrics.pair_key a b) gold.xrefs

let analyze_corpus (corpus : Dg.Corpus.t) =
  Lk.Profile_list.of_profiles
    (List.map Ds.Source_profile.analyze corpus.catalogs)

(* monotonic wall clock — Sys.time would report CPU time, which undercounts
   anything I/O-bound and inflates nothing-burger spins *)
let timed = Aladin_obs.Clock.timed

let scores_cells (s : Ev.Metrics.scores) =
  [ Ev.Report.cell_f s.precision; Ev.Report.cell_f s.recall; Ev.Report.cell_f s.f1 ]

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: spectrum of integration approaches                    *)
(* ------------------------------------------------------------------ *)

let e1_table1 () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  let gold_keys = gold_xref_keys corpus.gold in
  let quality links =
    Ev.Metrics.evaluate ~expected:gold_keys
      ~predicted:(link_pair_keys Lk.Link.Xref links)
  in
  let r =
    Ev.Report.create ~title:"E1 / Table 1: cost and quality per integration approach"
      ~columns:[ "approach"; "manual items"; "person-min"; "xref P"; "xref R"; "notes" ]
  in
  let row (c : Bl.Cost_model.cost) p rec_ =
    Ev.Report.add_row r
      [ c.approach; string_of_int c.manual_interventions;
        Printf.sprintf "%.0f" c.person_minutes; p; rec_; c.notes ]
  in
  (* data-focused: perfect by construction, paid per row *)
  row (Bl.Cost_model.data_focused corpus.catalogs) "1.000" "1.000";
  (* schema-focused: name-based matching only *)
  let name_corrs = Bl.Name_matcher.match_corpus corpus.catalogs in
  let schema_specs =
    (* attribute correspondences into primary-key targets become xref tags *)
    List.filter_map
      (fun cat ->
        let source = Rel.Catalog.name cat in
        match Dg.Gold.find_source corpus.gold source with
        | None -> None
        | Some sg ->
            let xrefs =
              List.filter_map
                (fun (m : Bl.Name_matcher.correspondence) ->
                  match Dg.Gold.find_source corpus.gold m.dst_source with
                  | Some tsg
                    when m.src_source = source
                         && String.lowercase_ascii m.dst_relation
                            = String.lowercase_ascii tsg.primary_relation
                         && String.lowercase_ascii m.dst_attribute
                            = String.lowercase_ascii tsg.accession_attribute ->
                      Some
                        { Bl.Srs.relation = m.src_relation;
                          attribute = m.src_attribute;
                          target_source = m.dst_source;
                          target_relation = tsg.primary_relation;
                          target_attribute = tsg.accession_attribute }
                  | Some _ | None -> None)
                name_corrs
            in
            Some
              { Bl.Srs.source; primary_relation = sg.primary_relation;
                accession_attribute = sg.accession_attribute;
                structure = sg.fks; xrefs })
      corpus.catalogs
  in
  let schema_links = Bl.Srs.integrate corpus.catalogs schema_specs in
  let sq = quality schema_links in
  let sc = Bl.Cost_model.schema_focused corpus.catalogs in
  row sc (Ev.Report.cell_f sq.precision) (Ev.Report.cell_f sq.recall);
  (* SRS: perfect manual specs *)
  let srs_specs =
    List.filter_map
      (fun cat ->
        Bl.Srs.spec_of_gold corpus.gold ~source:(Rel.Catalog.name cat)
          corpus.catalogs)
      corpus.catalogs
  in
  let srs_links = Bl.Srs.integrate corpus.catalogs srs_specs in
  let srsq = quality srs_links in
  row (Bl.Cost_model.srs_style srs_specs) (Ev.Report.cell_f srsq.precision)
    (Ev.Report.cell_f srsq.recall);
  (* ALADIN: automatic *)
  let w = Warehouse.integrate corpus.catalogs in
  let aq = quality (Warehouse.links w) in
  row
    (Bl.Cost_model.aladin corpus.catalogs ~n_parsers_needed:0)
    (Ev.Report.cell_f aq.precision) (Ev.Report.cell_f aq.recall);
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2: the five-step pipeline, per-source timings           *)
(* ------------------------------------------------------------------ *)

let e2_pipeline () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  let r =
    Ev.Report.create ~title:"E2 / Figure 2: per-step seconds while adding each source"
      ~columns:[ "source"; "rows"; "import"; "primary"; "secondary"; "links"; "dups" ]
  in
  let w = Warehouse.create () in
  List.iter
    (fun cat ->
      let report = Warehouse.add_source w cat in
      let sec step =
        match Warehouse.Run_report.find report step with
        | Some (s : Warehouse.Run_report.step_report) ->
            Printf.sprintf "%.3f" s.seconds
        | None -> "-"
      in
      Ev.Report.add_row r
        [ Rel.Catalog.name cat;
          string_of_int (Rel.Catalog.total_rows cat);
          sec "import";
          sec "primary discovery";
          sec "secondary discovery";
          sec "link discovery";
          sec "duplicate detection" ])
    corpus.catalogs;
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3 / §5: the BioSQL case study                           *)
(* ------------------------------------------------------------------ *)

let e3_biosql () =
  let corpus =
    Dg.Corpus.generate { default_corpus_params with include_flat_file = true }
  in
  let cat =
    List.find (fun c -> Rel.Catalog.name c = "swissflat") corpus.catalogs
  in
  let sp = Ds.Source_profile.analyze cat in
  let r =
    Ev.Report.create
      ~title:"E3 / Figure 3: BioSQL schema via the Swiss-Prot parser"
      ~columns:[ "property"; "expected"; "discovered"; "ok" ]
  in
  let add name expected discovered =
    Ev.Report.add_row r
      [ name; expected; discovered;
        (if String.lowercase_ascii expected = String.lowercase_ascii discovered
         then "yes" else "NO") ]
  in
  (match Ds.Source_profile.primary_accession sp with
  | Some (rel, attr) ->
      add "primary relation" "bioentry" rel;
      add "accession attribute" "accession" attr
  | None ->
      add "primary relation" "bioentry" "(none)";
      add "accession attribute" "accession" "(none)");
  (* FK structure P/R vs the known BioSQL shape *)
  let fk_key (fk : Ds.Inclusion.fk) =
    Printf.sprintf "%s.%s>%s.%s"
      (String.lowercase_ascii fk.src_relation) (String.lowercase_ascii fk.src_attribute)
      (String.lowercase_ascii fk.dst_relation) (String.lowercase_ascii fk.dst_attribute)
  in
  let gold_fk_key (fk : Dg.Gold.expected_fk) =
    Printf.sprintf "%s.%s>%s.%s"
      (String.lowercase_ascii fk.src_relation) (String.lowercase_ascii fk.src_attribute)
      (String.lowercase_ascii fk.dst_relation) (String.lowercase_ascii fk.dst_attribute)
  in
  let s =
    Ev.Metrics.evaluate
      ~expected:(List.map gold_fk_key Dg.Biosql_gen.expected_fks)
      ~predicted:(List.map fk_key sp.fks)
  in
  Ev.Report.add_row r
    [ "FK structure"; "6 foreign keys";
      Printf.sprintf "P=%.2f R=%.2f" s.precision s.recall;
      (if s.recall >= 0.99 then "yes" else "NO") ];
  (* the DBRef.accession cross-reference attribute (paper §5) *)
  let profiles = analyze_corpus corpus in
  let xr = Lk.Xref_disc.discover profiles in
  let dbref_found =
    List.exists
      (fun (c : Lk.Xref_disc.correspondence) ->
        c.src_source = "swissflat" && c.src_relation = "dbxref"
        && c.src_attribute = "accession")
      xr.correspondences
  in
  Ev.Report.add_row r
    [ "dbxref.accession is xref source"; "found"; (if dbref_found then "found" else "missed");
      (if dbref_found then "yes" else "NO") ];
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E4 — primary-relation discovery P/R                                 *)
(* ------------------------------------------------------------------ *)

let primary_accuracy (corpus : Dg.Corpus.t)
    ?(accession_params = Ds.Accession.default_params) () =
  let total = List.length corpus.gold.sources in
  let rel_ok = ref 0 and attr_ok = ref 0 in
  List.iter
    (fun (sg : Dg.Gold.source_gold) ->
      match
        List.find_opt (fun c -> Rel.Catalog.name c = sg.source) corpus.catalogs
      with
      | None -> ()
      | Some cat -> (
          let sp = Ds.Source_profile.analyze ~accession_params cat in
          match Ds.Source_profile.primary_accession sp with
          | Some (rel, attr) ->
              if String.lowercase_ascii rel = String.lowercase_ascii sg.primary_relation
              then begin
                incr rel_ok;
                if String.lowercase_ascii attr
                   = String.lowercase_ascii sg.accession_attribute
                then incr attr_ok
              end
          | None -> ()))
    corpus.gold.sources;
  ( float_of_int !rel_ok /. float_of_int (max 1 total),
    float_of_int !attr_ok /. float_of_int (max 1 total),
    total )

let e4_primary () =
  let r =
    Ev.Report.create
      ~title:"E4: primary-relation discovery accuracy (fraction of sources correct)"
      ~columns:[ "configuration"; "sources"; "relation acc"; "attribute acc" ]
  in
  let run name params accession_params =
    let seeds = [ 42; 43; 44 ] in
    let accs =
      List.map
        (fun seed ->
          let corpus = Dg.Corpus.generate { params with Dg.Corpus.seed = seed } in
          primary_accuracy corpus ?accession_params ())
        seeds
    in
    let n = match accs with (_, _, n) :: _ -> n | [] -> 0 in
    Ev.Report.add_row r
      [ name;
        Printf.sprintf "%d x %d seeds" n (List.length seeds);
        Ev.Report.cell_f (Ev.Metrics.mean (List.map (fun (a, _, _) -> a) accs));
        Ev.Report.cell_f (Ev.Metrics.mean (List.map (fun (_, b, _) -> b) accs)) ]
  in
  run "default heuristics" default_corpus_params None;
  run "generic FK column names"
    { default_corpus_params with generic_fk_names = true }
    None;
  run "declared constraints shipped"
    { default_corpus_params with declare_constraints = true }
    None;
  run "with field corruption 20%"
    { default_corpus_params with corruption = 0.2 }
    None;
  (* ablation of the accession heuristic thresholds *)
  run "ablation: min_length=2" default_corpus_params
    (Some { Ds.Accession.default_params with min_length = 2 });
  run "ablation: length spread 5%" default_corpus_params
    (Some { Ds.Accession.default_params with max_length_spread = 0.05 });
  run "ablation: length spread 60%" default_corpus_params
    (Some { Ds.Accession.default_params with max_length_spread = 0.6 });
  Ev.Report.print r;
  (* the EnsEmbl dual-primary case (§4.2) *)
  let u = Dg.Universe.generate small_universe in
  let cat, expected = Dg.Source_gen.build_dual_primary u ~name:"ensembl" in
  let sp = Ds.Source_profile.analyze cat in
  let found =
    Ds.Primary.choose_multi sp.graph sp.accession_candidates
    |> List.map (fun (s : Ds.Primary.scored) -> s.relation)
    |> List.sort String.compare
  in
  Printf.printf
    "\nE4b (dual-primary, §4.2 EnsEmbl case): expected {%s}, choose_multi found {%s} -> %s\n"
    (String.concat ", " (List.map fst expected))
    (String.concat ", " found)
    (if found = List.sort String.compare (List.map fst expected) then "ok"
     else "MISS")

(* ------------------------------------------------------------------ *)
(* E5 — FK inference and secondary structure                           *)
(* ------------------------------------------------------------------ *)

let e5_secondary () =
  let r =
    Ev.Report.create
      ~title:"E5: foreign-key inference and secondary-structure quality"
      ~columns:[ "configuration"; "fk P"; "fk R"; "fk F1"; "orphan relations" ]
  in
  let fk_key src_rel src_attr dst_rel dst_attr =
    String.lowercase_ascii
      (Printf.sprintf "%s.%s>%s.%s" src_rel src_attr dst_rel dst_attr)
  in
  let run ?inclusion_params name params =
    let corpus = Dg.Corpus.generate params in
    let expected =
      List.concat_map
        (fun (sg : Dg.Gold.source_gold) ->
          List.map
            (fun (fk : Dg.Gold.expected_fk) ->
              sg.source ^ "/"
              ^ fk_key fk.src_relation fk.src_attribute fk.dst_relation
                  fk.dst_attribute)
            sg.fks)
        corpus.gold.sources
    in
    let orphans = ref 0 in
    let predicted =
      List.concat_map
        (fun cat ->
          let sp = Ds.Source_profile.analyze ?inclusion_params cat in
          (match sp.secondary with
          | Some sec -> orphans := !orphans + List.length sec.orphans
          | None -> ());
          List.map
            (fun (fk : Ds.Inclusion.fk) ->
              Rel.Catalog.name cat ^ "/"
              ^ fk_key fk.src_relation fk.src_attribute fk.dst_relation
                  fk.dst_attribute)
            sp.fks)
        corpus.catalogs
    in
    let s = Ev.Metrics.evaluate ~expected ~predicted in
    Ev.Report.add_row r
      (name :: scores_cells s @ [ string_of_int !orphans ])
  in
  run "default heuristics" default_corpus_params;
  run "generic FK column names" { default_corpus_params with generic_fk_names = true };
  run "declared constraints shipped"
    { default_corpus_params with declare_constraints = true };
  run "bigger corpus"
    { default_corpus_params with
      universe = { small_universe with n_proteins = 150; n_structures = 60 } };
  (* dirty referential integrity: exact vs approximate INDs (KM92) *)
  let dirty = { default_corpus_params with fk_noise = 0.05 } in
  run "5% dangling FKs, exact INDs" dirty;
  run
    ~inclusion_params:{ Ds.Inclusion.default_params with min_containment = 0.9 }
    "5% dangling FKs, 90% containment" dirty;
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E6 — explicit link discovery and pruning                            *)
(* ------------------------------------------------------------------ *)

let e6_links () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  let profiles = analyze_corpus corpus in
  let gold_keys = gold_xref_keys corpus.gold in
  let r =
    Ev.Report.create ~title:"E6: explicit cross-reference discovery and pruning"
      ~columns:[ "variant"; "attr pairs"; "xref P"; "xref R"; "xref F1"; "seconds" ]
  in
  let run name prune =
    let params = { Lk.Xref_disc.default_params with prune } in
    let res, secs = timed (fun () -> Lk.Xref_disc.discover ~params profiles) in
    let s =
      Ev.Metrics.evaluate ~expected:gold_keys
        ~predicted:(link_pair_keys Lk.Link.Xref res.links)
    in
    Ev.Report.add_row r
      (name :: string_of_int res.pairs_compared :: scores_cells s
      @ [ Printf.sprintf "%.3f" secs ])
  in
  run "with pruning (default)" Lk.Prune.default_params;
  run "no pruning" Lk.Prune.no_pruning;
  (* name-matching baseline finds correspondences but cannot rank targets *)
  let corrs, secs = timed (fun () -> Bl.Name_matcher.match_corpus corpus.catalogs) in
  Ev.Report.add_row r
    [ "name-matcher baseline (attrs only)";
      string_of_int (List.length corrs); "-"; "-"; "-";
      Printf.sprintf "%.3f" secs ];
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E7 — implicit links from sequence homology                          *)
(* ------------------------------------------------------------------ *)

let e7_seqlinks () =
  let r =
    Ev.Report.create
      ~title:"E7: sequence-homology links vs mutation rate (threshold 0.5)"
      ~columns:[ "mutation rate"; "gold pairs"; "found"; "P"; "R"; "F1" ]
  in
  List.iter
    (fun rate ->
      let corpus =
        Dg.Corpus.generate
          { default_corpus_params with
            universe = { small_universe with mutation_rate = rate } }
      in
      let profiles = analyze_corpus corpus in
      let res = Lk.Seq_links.discover profiles in
      let expected =
        List.map (fun (a, b) -> Ev.Metrics.pair_key a b)
          (Dg.Gold.family_pairs corpus.universe corpus.gold)
      in
      let predicted = link_pair_keys Lk.Link.Seq_similarity res.links in
      let s = Ev.Metrics.evaluate ~expected ~predicted in
      Ev.Report.add_row r
        ([ Printf.sprintf "%.2f" rate; string_of_int (List.length expected);
           string_of_int (List.length predicted) ]
        @ scores_cells s))
    [ 0.02; 0.05; 0.10; 0.20; 0.30 ];
  Ev.Report.print r;
  (* threshold sweep at the default mutation rate *)
  let corpus = Dg.Corpus.generate default_corpus_params in
  let profiles = analyze_corpus corpus in
  let expected =
    List.map (fun (a, b) -> Ev.Metrics.pair_key a b)
      (Dg.Gold.family_pairs corpus.universe corpus.gold)
  in
  let r2 =
    Ev.Report.create ~title:"E7b: homology score threshold sweep"
      ~columns:[ "min normalized score"; "found"; "P"; "R"; "F1" ]
  in
  List.iter
    (fun thr ->
      let params = { Lk.Seq_links.default_params with min_normalized = thr } in
      let res = Lk.Seq_links.discover ~params profiles in
      let predicted = link_pair_keys Lk.Link.Seq_similarity res.links in
      let s = Ev.Metrics.evaluate ~expected ~predicted in
      Ev.Report.add_row r2
        ([ Printf.sprintf "%.2f" thr; string_of_int (List.length predicted) ]
        @ scores_cells s))
    [ 0.3; 0.5; 0.7; 0.9 ];
  Ev.Report.print r2

(* ------------------------------------------------------------------ *)
(* E8 — duplicate detection                                            *)
(* ------------------------------------------------------------------ *)

let e8_dups () =
  let r =
    Ev.Report.create
      ~title:"E8: duplicate detection vs corruption and threshold"
      ~columns:[ "corruption"; "threshold"; "candidates"; "P"; "R"; "F1" ]
  in
  List.iter
    (fun corruption ->
      let corpus =
        Dg.Corpus.generate { default_corpus_params with corruption }
      in
      let profiles = analyze_corpus corpus in
      (* as in the pipeline: step-4 xref attributes are excluded from bags *)
      let xr = Lk.Xref_disc.discover profiles in
      let exclude_attributes =
        List.map
          (fun (c : Lk.Xref_disc.correspondence) ->
            (c.src_source, c.src_relation, c.src_attribute))
          xr.correspondences
      in
      let reprs = Dup.Object_sim.build_reprs ~exclude_attributes profiles in
      let expected =
        List.map (fun (a, b) -> Ev.Metrics.pair_key a b)
          (Dg.Gold.duplicate_pairs corpus.gold)
      in
      List.iter
        (fun thr ->
          let res =
            Dup.Dup_detect.detect_on
              ~params:{ Dup.Dup_detect.default_params with min_similarity = thr }
              reprs
          in
          let predicted = link_pair_keys Lk.Link.Duplicate res.links in
          let s = Ev.Metrics.evaluate ~expected ~predicted in
          Ev.Report.add_row r
            ([ Printf.sprintf "%.1f" corruption; Printf.sprintf "%.2f" thr;
               string_of_int res.candidates_checked ]
            @ scores_cells s))
        [ 0.60; 0.70; 0.80 ])
    [ 0.0; 0.2; 0.4 ];
  Ev.Report.print r;
  (* conflicts among true duplicates: §4.5's data-conflict exploration *)
  let corpus = Dg.Corpus.generate { default_corpus_params with corruption = 0.3 } in
  let profiles = analyze_corpus corpus in
  let xr = Lk.Xref_disc.discover profiles in
  let exclude_attributes =
    List.map
      (fun (c : Lk.Xref_disc.correspondence) ->
        (c.src_source, c.src_relation, c.src_attribute))
      xr.correspondences
  in
  let res = Dup.Dup_detect.detect ~exclude_attributes profiles in
  let conflicts = Dup.Conflict.in_duplicates res.reprs res.links in
  Printf.printf "\nE8b: %d flagged duplicate pairs carry %d field conflicts\n"
    (List.length res.links) (List.length conflicts)

(* ------------------------------------------------------------------ *)
(* E9 — error propagation (§6.2)                                       *)
(* ------------------------------------------------------------------ *)

let e9_propagation () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  let gold_keys = gold_xref_keys corpus.gold in
  let sps = List.map Ds.Source_profile.analyze corpus.catalogs in
  let r =
    Ev.Report.create
      ~title:"E9 / §6.2: wrong primary relations propagate into link quality"
      ~columns:[ "sources with wrong primary"; "xref links"; "P"; "R"; "F1" ]
  in
  let break k =
    (* force the k first sources onto a wrong primary relation (their
       dictionary/keyword table when present) *)
    List.mapi
      (fun i sp ->
        if i >= k then sp
        else
          let catalog = Ds.Profile.catalog sp.Ds.Source_profile.profile in
          let wrong =
            List.find_opt
              (fun rel ->
                match Ds.Source_profile.primary_relation sp with
                | Some p ->
                    String.lowercase_ascii (Rel.Relation.name rel)
                    <> String.lowercase_ascii p
                | None -> true)
              (Rel.Catalog.relations catalog)
          in
          match wrong with
          | Some rel ->
              Ds.Source_profile.with_primary sp ~relation:(Rel.Relation.name rel)
          | None -> sp)
      sps
  in
  List.iter
    (fun k ->
      let profiles = Lk.Profile_list.of_profiles (break k) in
      let res = Lk.Xref_disc.discover profiles in
      let predicted = link_pair_keys Lk.Link.Xref res.links in
      let s = Ev.Metrics.evaluate ~expected:gold_keys ~predicted in
      Ev.Report.add_row r
        ([ string_of_int k; string_of_int (List.length predicted) ]
        @ scores_cells s))
    [ 0; 1; 2; 3 ];
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E10 — incremental addition cost (§6.2)                              *)
(* ------------------------------------------------------------------ *)

let e10_scale () =
  let r =
    Ev.Report.create
      ~title:"E10 / §6.2: cost of adding the k-th source (seconds)"
      ~columns:
        [ "k"; "source"; "rows"; "incremental index"; "full recompute";
          "no pruning" ]
  in
  let corpus =
    Dg.Corpus.generate
      { default_corpus_params with
        universe = { small_universe with n_proteins = 100; n_structures = 40 } }
  in
  let full_cfg = { Config.default with incremental_seq = false } in
  let no_prune_cfg =
    { full_cfg with
      linker =
        { Lk.Linker.default_params with
          xref = { Lk.Xref_disc.default_params with prune = Lk.Prune.no_pruning } } }
  in
  let w1 = Warehouse.create () in
  let w2 = Warehouse.create ~config:full_cfg () in
  let w3 = Warehouse.create ~config:no_prune_cfg () in
  List.iteri
    (fun i cat ->
      let _, t1 = timed (fun () -> Warehouse.add_source w1 cat) in
      let _, t2 = timed (fun () -> Warehouse.add_source w2 cat) in
      let _, t3 = timed (fun () -> Warehouse.add_source w3 cat) in
      Ev.Report.add_row r
        [ string_of_int (i + 1); Rel.Catalog.name cat;
          string_of_int (Rel.Catalog.total_rows cat);
          Printf.sprintf "%.3f" t1; Printf.sprintf "%.3f" t2;
          Printf.sprintf "%.3f" t3 ])
    corpus.catalogs;
  Ev.Report.print r;
  Printf.printf
    "(incremental keeps the homology index; full recompute re-aligns all \
     pairs on every addition)\n"

(* ------------------------------------------------------------------ *)
(* E11 — access engine quality                                         *)
(* ------------------------------------------------------------------ *)

let e11_access () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  let w = Warehouse.integrate corpus.catalogs in
  let eng = Engine.create w in
  let r =
    Ev.Report.create ~title:"E11: access engine (search, SQL, browsing)"
      ~columns:[ "metric"; "value" ]
  in
  (* known-item search: query an object by its name, find its rank *)
  let probes =
    Engine.objects eng
    |> List.filteri (fun i _ -> i mod 7 = 0)
    |> List.filter_map (fun obj ->
           match Engine.view eng obj with
           | Some v -> (
               match List.assoc_opt "name" v.fields with
               | Some name when name <> "" -> Some (obj, name)
               | Some _ | None -> None)
           | None -> None)
  in
  let rr =
    probes
    |> List.map (fun (obj, name) ->
           let hits = Engine.search eng ~limit:20 name in
           let rec rank i = function
             | [] -> 0.0
             | (h : Aladin_access.Search.hit) :: rest ->
                 if Lk.Objref.equal h.obj obj then 1.0 /. float_of_int i
                 else rank (i + 1) rest
           in
           rank 1 hits)
  in
  Ev.Report.add_row r
    [ "known-item search MRR (by name)";
      Printf.sprintf "%.3f over %d probes" (Ev.Metrics.mean rr) (List.length rr) ];
  (* SQL correctness: count via SQL = count via the relation *)
  let sql_exn q =
    match Engine.query eng q with Ok r -> r | Error m -> invalid_arg m
  in
  let sql_count = Rel.Relation.cardinality (sql_exn "SELECT * FROM uniprot.entry") in
  let direct =
    match Warehouse.resolve_table w "uniprot.entry" with
    | Some rel -> Rel.Relation.cardinality rel
    | None -> -1
  in
  Ev.Report.add_row r
    [ "SQL SELECT * count = direct count";
      Printf.sprintf "%d = %d (%s)" sql_count direct
        (if sql_count = direct then "ok" else "MISMATCH") ];
  let joined =
    Rel.Relation.cardinality
      (sql_exn
         "SELECT accession FROM uniprot.entry JOIN uniprot.sequence_data ON \
          uniprot.entry.entry_id = uniprot.sequence_data.entry_id")
  in
  Ev.Report.add_row r
    [ "SQL join entry x sequence rows"; string_of_int joined ];
  (* path ranking: linked objects outrank unlinked ones *)
  let paths = Engine.paths eng in
  let linked_scores, unlinked_scores =
    match Engine.links eng with
    | [] -> ([], [])
    | links ->
        let linked =
          links
          |> List.filteri (fun i _ -> i mod 11 = 0)
          |> List.map (fun (l : Lk.Link.t) ->
                 Aladin_access.Path_rank.relatedness paths l.src l.dst)
        in
        let objs = Engine.objects eng in
        let unlinked =
          match objs with
          | a :: rest ->
              rest
              |> List.filteri (fun i _ -> i mod 17 = 0)
              |> List.map (fun b -> Aladin_access.Path_rank.relatedness paths a b)
          | [] -> []
        in
        (linked, unlinked)
  in
  Ev.Report.add_row r
    [ "mean path score: linked vs random pairs";
      Printf.sprintf "%.3f vs %.3f"
        (Ev.Metrics.mean linked_scores)
        (Ev.Metrics.mean unlinked_scores) ];
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* E12 — change threshold policy (§6.2)                                *)
(* ------------------------------------------------------------------ *)

let e12_changes () =
  let r =
    Ev.Report.create
      ~title:"E12 / §6.2: re-analysis threshold vs recomputations and staleness"
      ~columns:[ "threshold"; "batches"; "reanalyses"; "max deferred rows" ]
  in
  let tiny =
    { default_corpus_params with
      universe =
        { small_universe with n_proteins = 20; n_genes = 8; n_structures = 8;
          n_diseases = 4; n_terms = 8; n_families = 4 } }
  in
  List.iter
    (fun threshold ->
      let corpus = Dg.Corpus.generate tiny in
      let cfg = { Config.default with change_threshold = threshold } in
      let w = Warehouse.integrate ~config:cfg corpus.catalogs in
      let rows =
        match Warehouse.catalog w "uniprot" with
        | Some c -> Rel.Catalog.total_rows c
        | None -> 0
      in
      let batch = max 1 (rows / 25) in
      let reanalyses = ref 0 in
      let deferred = ref 0 in
      let max_deferred = ref 0 in
      for _ = 1 to 20 do
        match Warehouse.notify_change w ~source:"uniprot" ~changed_rows:batch with
        | `Reanalyze -> begin
            incr reanalyses;
            (match Warehouse.catalog w "uniprot" with
            | Some c -> ignore (Warehouse.add_source w c)
            | None -> ());
            deferred := 0
          end
        | `Defer ->
            deferred := !deferred + batch;
            if !deferred > !max_deferred then max_deferred := !deferred
      done;
      Ev.Report.add_row r
        [ Printf.sprintf "%.2f" threshold; "20"; string_of_int !reanalyses;
          string_of_int !max_deferred ])
    [ 0.02; 0.05; 0.10; 0.25; 0.50 ];
  Ev.Report.print r

(* ------------------------------------------------------------------ *)
(* pipeline — domain-pool speedup trajectory (BENCH_pipeline.json)     *)
(* ------------------------------------------------------------------ *)

let pipeline_steps =
  [ "primary discovery"; "fk inference"; "secondary discovery";
    "link discovery"; "xref pass"; "seq pass"; "text pass";
    "duplicate detection" ]

(* total seconds per span name, summed over the whole trace tree *)
let step_seconds tr =
  let tbl = Hashtbl.create 16 in
  let rec walk sp =
    let n = Aladin_obs.Span.name sp in
    Hashtbl.replace tbl n
      (Option.value ~default:0.0 (Hashtbl.find_opt tbl n)
      +. Aladin_obs.Span.duration sp);
    List.iter walk (Aladin_obs.Span.children sp)
  in
  List.iter walk (Aladin_obs.Trace.roots tr);
  fun name -> Option.value ~default:0.0 (Hashtbl.find_opt tbl name)

(* the headline pipeline bench runs a 10x corpus so per-batch work is large
   enough to amortize the fan-out's fixed costs; the seed-comparable small
   corpus rides along so regressions against historical numbers stay
   visible *)
let pipeline_universe =
  { Dg.Universe.default_params with n_proteins = 600; n_genes = 300;
    n_structures = 250; n_diseases = 100; n_terms = 160; n_families = 80 }

let hot_steps =
  [ "fk inference"; "xref pass"; "link discovery"; "seq pass"; "text pass";
    "duplicate detection" ]

let pipeline_bench () =
  let run_corpus label (corpus : Dg.Corpus.t) =
    let run domains =
      let tr =
        Aladin_obs.Trace.create
          ~name:(Printf.sprintf "pipeline %s d=%d" label domains)
          ()
      in
      let w, wall =
        timed (fun () ->
            Warehouse.integrate
              ~config:{ Config.default with domains }
              ~trace:tr corpus.catalogs)
      in
      (* measurement isolation: join this size's workers before the next
         run — on OCaml 5 even IDLE domains tax every stop-the-world minor
         collection, so a leftover pool would slow every later run *)
      if domains > 1 then Aladin_par.Pool.(shutdown (get ~domains ()));
      (domains, wall, step_seconds tr, List.length (Warehouse.links w),
       Aladin_obs.Trace.counter_value tr "fk.accepted")
    in
    let runs = List.map run [ 1; 2; 4 ] in
    let r =
      Ev.Report.create
        ~title:
          (Printf.sprintf
             "pipeline (%s corpus): full warehouse integration at 1/2/4 \
              domains (seconds; results must be identical)"
             label)
        ~columns:(("domains" :: "wall" :: pipeline_steps) @ [ "links"; "fks" ])
    in
    List.iter
      (fun (d, wall, sec, links, fks) ->
        Ev.Report.add_row r
          ((string_of_int d :: Printf.sprintf "%.3f" wall
            :: List.map (fun s -> Printf.sprintf "%.3f" (sec s)) pipeline_steps)
          @ [ string_of_int links; string_of_int fks ]))
      runs;
    Ev.Report.print r;
    (match runs with
    | (_, _, _, links1, fks1) :: rest ->
        let same =
          List.for_all (fun (_, _, _, l, f) -> l = links1 && f = fks1) rest
        in
        Printf.printf "determinism across pool sizes (%s): %s\n" label
          (if same then "ok (links and fks identical)" else "MISMATCH")
    | [] -> ());
    runs
  in
  let speedup base_v v = if v > 0.0 then base_v /. v else 1.0 in
  let runs_json runs =
    let base =
      match runs with (_, wall, _, _, _) :: _ -> wall | [] -> 0.0
    in
    String.concat ",\n"
      (List.map
         (fun (d, wall, sec, links, fks) ->
           Printf.sprintf
             "    {\n\
             \      \"domains\": %d,\n\
             \      \"wall_seconds\": %.6f,\n\
             \      \"speedup_vs_1_domain\": %.3f,\n\
             \      \"links\": %d,\n\
             \      \"fks\": %d,\n\
             \      \"step_seconds\": {\n\
              %s\n\
             \      }\n\
             \    }"
             d wall (speedup base wall) links fks
             (String.concat ",\n"
                (List.map
                   (fun s -> Printf.sprintf "        %S: %.6f" s (sec s))
                   pipeline_steps)))
         runs)
  in
  let big =
    run_corpus "10x"
      (Dg.Corpus.generate
         { default_corpus_params with universe = pipeline_universe })
  in
  let small = run_corpus "small" (Dg.Corpus.generate default_corpus_params) in
  let hot_speedups =
    match (big, List.find_opt (fun (d, _, _, _, _) -> d = 4) big) with
    | (_, _, sec1, _, _) :: _, Some (_, _, sec4, _, _) ->
        String.concat ",\n"
          (List.map
             (fun s ->
               Printf.sprintf "    %S: %.3f" s (speedup (sec1 s) (sec4 s)))
             hot_steps)
    | _ -> ""
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"pipeline\",\n\
      \  \"corpus_seed\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"corpus\": \"10x small universe (600 proteins, 300 genes, 250 \
       structures)\",\n\
      \  \"runs\": [\n\
       %s\n\
      \  ],\n\
      \  \"hot_step_speedups_at_4_domains\": {\n\
       %s\n\
      \  },\n\
      \  \"small_corpus_runs\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      default_corpus_params.Dg.Corpus.seed
      (Domain.recommended_domain_count ())
      (runs_json big) hot_speedups (runs_json small)
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json\n"

(* ------------------------------------------------------------------ *)
(* resilience — error-boundary overhead on the clean path, plus the    *)
(* write-ahead journal: its clean-path overhead and how much a resume  *)
(* after a late kill saves over a cold rerun (BENCH_resilience.json)   *)
(* ------------------------------------------------------------------ *)

let bench_fresh_dir tag =
  let d = Filename.temp_file "aladin-bench" tag in
  Sys.remove d;
  d

let rec bench_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter
      (fun e -> bench_rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let bench_rm_rf path = if Sys.file_exists path then bench_rm_rf path

let resilience_bench () =
  let corpus = Dg.Corpus.generate default_corpus_params in
  (* budgets generous enough to never fire: the cost measured is purely
     the boundary + the per-item deadline polls in the pool *)
  let generous =
    { Config.no_budgets with
      Config.primary = Some 3600.0; secondary = Some 3600.0;
      links = Some 3600.0; xref_pass = Some 3600.0; seq_pass = Some 3600.0;
      text_pass = Some 3600.0; onto_pass = Some 3600.0; dups = Some 3600.0 }
  in
  let run budgets =
    let w, wall =
      timed (fun () ->
          Warehouse.integrate ~config:{ Config.default with budgets }
            corpus.catalogs)
    in
    (wall, List.length (Warehouse.links w))
  in
  ignore (run Config.no_budgets) (* warm-up *);
  let reps = 3 in
  let sample budgets =
    let measures = List.init reps (fun _ -> run budgets) in
    ( List.fold_left (fun acc (w, _) -> min acc w) infinity measures,
      fst (List.split measures),
      snd (List.hd measures) )
  in
  let plain_wall, plain_all, plain_links = sample Config.no_budgets in
  let budg_wall, budg_all, budg_links = sample generous in
  let overhead_pct = (budg_wall -. plain_wall) /. plain_wall *. 100.0 in
  let r =
    Ev.Report.create
      ~title:
        "resilience: clean-path integration, unbudgeted vs fully budgeted \
         (best of 3)"
      ~columns:[ "variant"; "wall"; "links" ]
  in
  Ev.Report.add_row r
    [ "no budgets"; Printf.sprintf "%.3f" plain_wall; string_of_int plain_links ];
  Ev.Report.add_row r
    [ "all budgeted"; Printf.sprintf "%.3f" budg_wall; string_of_int budg_links ];
  Ev.Report.print r;
  Printf.printf "boundary overhead: %+.2f%% (links identical: %s)\n"
    overhead_pct
    (if plain_links = budg_links then "yes" else "NO");
  (* --- the write-ahead journal: clean-path overhead --- *)
  let links_csv w = Aladin_access.Link_export.to_csv (Warehouse.links w) in
  let plain_csv =
    links_csv (Warehouse.integrate ~config:Config.default corpus.catalogs)
  in
  let journaled () =
    let dir = bench_fresh_dir "wal" in
    let (w, _), wall =
      timed (fun () ->
          match Warehouse.integrate_journaled ~journal:dir corpus.catalogs with
          | Ok r -> r
          | Error e -> failwith e)
    in
    (dir, wall, links_csv w)
  in
  let cold () =
    snd (timed (fun () -> Warehouse.integrate ~config:Config.default corpus.catalogs))
  in
  (* interleave cold and journaled reps so page-cache / heap drift over
     the run biases neither variant *)
  let interleaved =
    List.init reps (fun _ ->
        let c = cold () in
        let j = journaled () in
        (c, j))
  in
  let cold_measures = List.map fst interleaved in
  let journal_measures = List.map snd interleaved in
  let journal_all = List.map (fun (_, w, _) -> w) journal_measures in
  let journal_wall = List.fold_left min infinity journal_all in
  let cold_wall = List.fold_left min infinity cold_measures in
  let journal_identical =
    List.for_all (fun (_, _, csv) -> csv = plain_csv) journal_measures
  in
  let journal_overhead_pct =
    (journal_wall -. cold_wall) /. cold_wall *. 100.0
  in
  List.iter (fun (d, _, _) -> bench_rm_rf d) journal_measures;
  Printf.printf "journal overhead: %+.2f%% (links identical: %s)\n"
    journal_overhead_pct
    (if journal_identical then "yes" else "NO");
  (* --- resume after a late kill vs a cold rerun --- *)
  let n_sources = List.length corpus.catalogs in
  let resume_once () =
    let dir = bench_fresh_dir "res" in
    Aladin_store.Fault.reset_counters ();
    (* each journaled source crosses three step boundaries; kill at the
       last source's first one, so all but one step is committed *)
    Aladin_store.Fault.arm_step ~index:(3 * (n_sources - 1));
    (match Warehouse.integrate_journaled ~journal:dir corpus.catalogs with
    | Ok _ | Error _ ->
        Aladin_store.Fault.disarm ();
        failwith "resilience bench: expected the armed kill to fire"
    | exception Aladin_store.Fault.Killed -> Aladin_store.Fault.disarm ());
    let (w, _), wall =
      timed (fun () ->
          match Warehouse.integrate_journaled ~journal:dir corpus.catalogs with
          | Ok r -> r
          | Error e -> failwith e)
    in
    bench_rm_rf dir;
    (wall, links_csv w = plain_csv)
  in
  let resume_measures = List.init reps (fun _ -> resume_once ()) in
  let resume_all = List.map fst resume_measures in
  let resume_wall = List.fold_left min infinity resume_all in
  let resume_identical = List.for_all snd resume_measures in
  let resume_ratio = resume_wall /. cold_wall in
  Printf.printf
    "resume after late kill: %.3fs vs %.3fs cold (%.0f%% of a rerun, links \
     identical: %s)\n"
    resume_wall cold_wall (resume_ratio *. 100.0)
    (if resume_identical then "yes" else "NO");
  let floats l =
    String.concat ", " (List.map (Printf.sprintf "%.6f") l)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"resilience\",\n\
      \  \"corpus_seed\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"unbudgeted_wall_seconds\": [%s],\n\
      \  \"budgeted_wall_seconds\": [%s],\n\
      \  \"best_unbudgeted\": %.6f,\n\
      \  \"best_budgeted\": %.6f,\n\
      \  \"overhead_percent\": %.3f,\n\
      \  \"links_identical\": %b,\n\
      \  \"journaled_wall_seconds\": [%s],\n\
      \  \"cold_wall_seconds\": [%s],\n\
      \  \"best_journaled\": %.6f,\n\
      \  \"best_cold\": %.6f,\n\
      \  \"journal_overhead_percent\": %.3f,\n\
      \  \"links_identical_after_journal\": %b,\n\
      \  \"resume_wall_seconds\": [%s],\n\
      \  \"best_resume_after_late_kill\": %.6f,\n\
      \  \"resume_to_cold_ratio\": %.3f,\n\
      \  \"links_identical_after_resume\": %b\n\
       }\n"
      default_corpus_params.Dg.Corpus.seed reps (floats plain_all)
      (floats budg_all) plain_wall budg_wall overhead_pct
      (plain_links = budg_links)
      (floats journal_all) (floats cold_measures) journal_wall cold_wall
      journal_overhead_pct journal_identical (floats resume_all) resume_wall
      resume_ratio resume_identical
  in
  let oc = open_out "BENCH_resilience.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_resilience.json\n"

(* ------------------------------------------------------------------ *)
(* bechamel microbenchmarks of the hot kernels                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let rng = Dg.Rng.create 4242 in
  let seq_a = Dg.Seq_gen.dna rng 200 in
  let seq_b = Dg.Seq_gen.mutate rng ~rate:0.05 seq_a in
  let words =
    List.init 200 (fun i -> Printf.sprintf "token%d content word%d" i (i * 3))
  in
  let idx = Aladin_text.Inverted_index.create () in
  List.iteri
    (fun i text ->
      Aladin_text.Inverted_index.add idx ~doc_id:(string_of_int i) ~field:"f" text)
    words;
  let kidx = Aladin_seq.Kmer_index.create ~k:8 in
  for i = 0 to 99 do
    Aladin_seq.Kmer_index.add kidx ~id:(string_of_int i)
      (Dg.Seq_gen.dna rng 150)
  done;
  let set_a =
    Rel.Vset.of_list (List.init 2000 (fun i -> Rel.Value.Int i))
  in
  let set_b =
    Rel.Vset.of_list (List.init 4000 (fun i -> Rel.Value.Int i))
  in
  let tests =
    [
      Test.make ~name:"levenshtein-24" (Staged.stage (fun () ->
          Aladin_text.Strdist.levenshtein "hexokinase glucokinase" "hexokinase glucokinases"));
      Test.make ~name:"smith-waterman-200x200" (Staged.stage (fun () ->
          Aladin_seq.Align.local_score seq_a seq_b));
      Test.make ~name:"kmer-candidates" (Staged.stage (fun () ->
          Aladin_seq.Kmer_index.candidates kidx seq_a));
      Test.make ~name:"inverted-index-search" (Staged.stage (fun () ->
          Aladin_text.Inverted_index.search idx "token42 content"));
      Test.make ~name:"inclusion-subset-2k-4k" (Staged.stage (fun () ->
          Rel.Vset.subset set_a set_b));
      Test.make ~name:"jaro-winkler" (Staged.stage (fun () ->
          Aladin_text.Strdist.jaro_winkler "dehydrogenase" "decarboxylase"));
    ]
  in
  let open Bechamel.Toolkit in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"aladin" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", ("E1: Table 1 cost/quality spectrum", e1_table1));
    ("fig2", ("E2: five-step pipeline timings", e2_pipeline));
    ("biosql", ("E3: BioSQL case study", e3_biosql));
    ("primary", ("E4: primary-relation discovery", e4_primary));
    ("secondary", ("E5: FK and secondary structure", e5_secondary));
    ("links", ("E6: xref discovery and pruning", e6_links));
    ("seqlinks", ("E7: homology links", e7_seqlinks));
    ("dups", ("E8: duplicate detection", e8_dups));
    ("propagation", ("E9: error propagation", e9_propagation));
    ("scale", ("E10: incremental addition cost", e10_scale));
    ("access", ("E11: access engine", e11_access));
    ("changes", ("E12: change threshold", e12_changes));
    ("pipeline", ("pipeline: domain-pool speedup 1/2/4", pipeline_bench));
    ("resilience", ("resilience: error-boundary overhead", resilience_bench));
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "micro" :: _ -> micro ()
  | _ :: name :: _ -> (
      match List.assoc_opt name experiments with
      | Some (_, f) -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; known: %s micro\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
  | _ ->
      List.iter
        (fun (_, (title, f)) ->
          Printf.printf "\n######## %s ########\n%!" title;
          let (), secs = timed f in
          Printf.printf "(experiment took %.1fs)\n%!" secs)
        experiments
