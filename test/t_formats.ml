open Aladin_relational
open Aladin_formats

let check = Alcotest.check

(* name lengths vary (11/9/6) so that [name] fails the 20 % length-spread
   accession test and [accession] is the candidate, as in the paper *)
let sample_swissprot =
  "ID   TEST1_HUMAN\n\
   AC   P11111;\n\
   DE   Test protein one.\n\
   OS   Homo sapiens.\n\
   KW   ATP binding; DNA repair.\n\
   DR   PDB; 1ABC.\n\
   DR   GO; GO:0005524.\n\
   RX   MEDLINE; 12345678; Some title.\n\
   SQ   SEQUENCE 12 AA\n\
   ..   MKWVTFISLLFL\n\
   //\n\
   ID   AB2_MOUSE\n\
   AC   Q22222;\n\
   DE   Test protein number two with a much longer description line.\n\
   OS   Mus musculus.\n\
   KW   ATP binding.\n\
   DR   PDB; 2XYZ.\n\
   //\n\
   ID   C3_FLY\n\
   AC   A33333;\n\
   DE   Third.\n\
   OS   Drosophila melanogaster.\n\
   //\n"

let line_format_tests =
  [
    Alcotest.test_case "records split on //" `Quick (fun () ->
        check Alcotest.int "three records" 3
          (List.length (Line_format.records sample_swissprot)));
    Alcotest.test_case "parse_line" `Quick (fun () ->
        match Line_format.parse_line "AC   P11111;" with
        | Some l ->
            check Alcotest.string "code" "AC" l.code;
            check Alcotest.string "payload" "P11111;" l.payload
        | None -> Alcotest.fail "no line");
    Alcotest.test_case "blank is None" `Quick (fun () ->
        check Alcotest.bool "none" true (Line_format.parse_line "   " = None));
    Alcotest.test_case "joined concatenates" `Quick (fun () ->
        let lines =
          [ { Line_format.code = "DE"; payload = "part one" };
            { Line_format.code = "DE"; payload = "part two" } ]
        in
        check Alcotest.(option string) "joined" (Some "part one part two")
          (Line_format.joined ~code:"DE" lines);
        check Alcotest.(option string) "missing" None
          (Line_format.joined ~code:"XX" lines));
    Alcotest.test_case "split_list" `Quick (fun () ->
        check Alcotest.(list string) "kws" [ "ATP binding"; "DNA repair" ]
          (Line_format.split_list "ATP binding; DNA repair."));
  ]

let swissprot_tests =
  [
    Alcotest.test_case "bioentry rows" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        let be = Catalog.find_exn cat "bioentry" in
        check Alcotest.int "three entries" 3 (Relation.cardinality be);
        check Alcotest.bool "accession" true
          (Relation.value be 0 "accession" = Value.Text "P11111");
        check Alcotest.bool "name" true
          (Relation.value be 0 "name" = Value.Text "TEST1_HUMAN"));
    Alcotest.test_case "taxon dictionary dedups" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        check Alcotest.int "three taxa" 3
          (Relation.cardinality (Catalog.find_exn cat "taxon")));
    Alcotest.test_case "keywords shared via dictionary" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        check Alcotest.int "terms" 2 (Relation.cardinality (Catalog.find_exn cat "term"));
        check Alcotest.int "bridge" 3
          (Relation.cardinality (Catalog.find_exn cat "bioentry_term")));
    Alcotest.test_case "dbxrefs parsed" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        let dx = Catalog.find_exn cat "dbxref" in
        check Alcotest.int "three" 3 (Relation.cardinality dx);
        check Alcotest.bool "target acc" true
          (Relation.value dx 0 "accession" = Value.Text "1ABC"));
    Alcotest.test_case "sequence reassembled" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        let bs = Catalog.find_exn cat "biosequence" in
        check Alcotest.int "one seq" 1 (Relation.cardinality bs);
        check Alcotest.bool "seq" true
          (Relation.value bs 0 "biosequence_str" = Value.Text "MKWVTFISLLFL"));
    Alcotest.test_case "reference parsed" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        let r = Catalog.find_exn cat "reference" in
        check Alcotest.int "one" 1 (Relation.cardinality r);
        check Alcotest.bool "pmid" true
          (Relation.value r 0 "medline_id" = Value.Text "12345678"));
    Alcotest.test_case "no constraints by default" `Quick (fun () ->
        let cat = Swissprot.parse sample_swissprot in
        check Alcotest.int "zero" 0 (List.length (Catalog.constraints cat)));
    Alcotest.test_case "declare adds dictionary" `Quick (fun () ->
        let cat = Swissprot.parse ~declare:true sample_swissprot in
        check Alcotest.bool "has fks" true (List.length (Catalog.declared_fks cat) >= 6));
  ]

let fasta_tests =
  [
    Alcotest.test_case "records parsed" `Quick (fun () ->
        let doc = ">A1 first protein\nMKWV\nTFIS\n>B2\nACGT\n" in
        match Fasta.records doc with
        | [ a; b ] ->
            check Alcotest.string "acc" "A1" a.accession;
            check Alcotest.string "desc" "first protein" a.description;
            check Alcotest.string "seq joined" "MKWVTFIS" a.sequence;
            check Alcotest.string "no desc" "" b.description
        | rs -> Alcotest.fail (Printf.sprintf "%d records" (List.length rs)));
    Alcotest.test_case "render/parse roundtrip" `Quick (fun () ->
        let rs =
          [ { Fasta.accession = "X1"; description = "d"; sequence = String.make 130 'A' } ]
        in
        check Alcotest.bool "roundtrip" true (Fasta.records (Fasta.render rs) = rs));
    Alcotest.test_case "wrapping at 60" `Quick (fun () ->
        let rs =
          [ { Fasta.accession = "X1"; description = ""; sequence = String.make 70 'C' } ]
        in
        let lines = String.split_on_char '\n' (Fasta.render rs) in
        check Alcotest.bool "wrapped" true (List.exists (fun l -> String.length l = 60) lines));
    Alcotest.test_case "parse to catalog" `Quick (fun () ->
        let cat = Fasta.parse ">A1 x\nACGT\n" in
        let e = Catalog.find_exn cat "entry" in
        check Alcotest.int "one row" 1 (Relation.cardinality e));
  ]

let obo_sample =
  "format-version: 1.2\n\n[Term]\nid: GO:0000001\nname: alpha process\n\
   namespace: biological_process\ndef: \"The alpha thing.\" [src]\n\n[Term]\n\
   id: GO:0000002\nname: beta process\nis_a: GO:0000001 ! alpha process\n\n\
   [Typedef]\nid: part_of\n"

let obo_tests =
  [
    Alcotest.test_case "terms parsed" `Quick (fun () ->
        match Obo.terms obo_sample with
        | [ a; b ] ->
            check Alcotest.string "id" "GO:0000001" a.id;
            check Alcotest.string "name" "alpha process" a.name;
            check Alcotest.string "def quoted" "The alpha thing." a.definition;
            check Alcotest.(list string) "is_a comment stripped" [ "GO:0000001" ] b.is_a
        | ts -> Alcotest.fail (Printf.sprintf "%d terms" (List.length ts)));
    Alcotest.test_case "typedef ignored" `Quick (fun () ->
        check Alcotest.int "two" 2 (List.length (Obo.terms obo_sample)));
    Alcotest.test_case "catalog has isa" `Quick (fun () ->
        let cat = Obo.parse obo_sample in
        check Alcotest.int "terms" 2 (Relation.cardinality (Catalog.find_exn cat "term"));
        check Alcotest.int "isa" 1
          (Relation.cardinality (Catalog.find_exn cat "term_isa")));
    Alcotest.test_case "render roundtrip" `Quick (fun () ->
        let ts = Obo.terms obo_sample in
        check Alcotest.bool "roundtrip" true (Obo.terms (Obo.render ts) = ts));
  ]

let pdb_sample =
  "HEADER    OXIDOREDUCTASE              1ABC\n\
   TITLE     CRYSTAL STRUCTURE OF SOMETHING\n\
   COMPND    SOME PROTEIN\n\
   EXPDTA    X-RAY DIFFRACTION\n\
   DBREF     1ABC A SWS P11111\n\
   SEQRES    A MKWVTFIS\n\
   SEQRES    A LLFLFSSA\n\
   SEQRES    B ACDEFGHI\n\
   END\n\
   HEADER    LYASE              2XYZ\n\
   TITLE     ANOTHER ONE\n\
   END\n"

let pdb_tests =
  [
    Alcotest.test_case "structures parsed" `Quick (fun () ->
        let cat = Pdb_flat.parse pdb_sample in
        let s = Catalog.find_exn cat "structure" in
        check Alcotest.int "two" 2 (Relation.cardinality s);
        check Alcotest.bool "acc" true (Relation.value s 0 "pdb_acc" = Value.Text "1ABC");
        check Alcotest.bool "class" true
          (Relation.value s 0 "classification" = Value.Text "OXIDOREDUCTASE"));
    Alcotest.test_case "chains assembled" `Quick (fun () ->
        let cat = Pdb_flat.parse pdb_sample in
        let c = Catalog.find_exn cat "chain" in
        check Alcotest.int "two chains" 2 (Relation.cardinality c);
        check Alcotest.bool "chain A seq" true
          (Relation.value c 0 "sequence" = Value.Text "MKWVTFISLLFLFSSA"));
    Alcotest.test_case "dbref parsed" `Quick (fun () ->
        let cat = Pdb_flat.parse pdb_sample in
        let r = Catalog.find_exn cat "struct_ref" in
        check Alcotest.int "one" 1 (Relation.cardinality r);
        check Alcotest.bool "acc" true (Relation.value r 0 "accession" = Value.Text "P11111"));
  ]

let genbank_sample =
  "LOCUS       KIN1HS 60 bp\n\
   DEFINITION  Homo sapiens alpha kinase mRNA,\n\
   \            complete cds.\n\
   ACCESSION   AB123456\n\
   SOURCE      Homo sapiens\n\
   FEATURES             Location/Qualifiers\n\
   \     source          1..60\n\
   \                     /organism=\"Homo sapiens\"\n\
   \     CDS             1..60\n\
   \                     /gene=\"KIN1\"\n\
   \                     /db_xref=\"UniProt:P12345\"\n\
   \                     /pseudo\n\
   ORIGIN\n\
   \        1 atggcgatcg atcgatcgta atggcgatcg atcgatcgta atggcgatcg atcgatcgta\n\
   //\n\
   LOCUS       TRP9SC 30 bp\n\
   DEFINITION  Short one.\n\
   ACCESSION   CD900210\n\
   SOURCE      Saccharomyces cerevisiae\n\
   ORIGIN\n\
   \        1 acgtacgtac gtacgtacgt acgtacgtac\n\
   //\n"

let genbank_tests =
  [
    Alcotest.test_case "records parsed" `Quick (fun () ->
        match Genbank.records genbank_sample with
        | [ a; b ] ->
            check Alcotest.string "locus" "KIN1HS" a.locus;
            check Alcotest.string "accession" "AB123456" a.accession;
            check Alcotest.string "definition continuation"
              "Homo sapiens alpha kinase mRNA, complete cds." a.definition;
            check Alcotest.string "organism" "Homo sapiens" a.organism;
            check Alcotest.int "features" 2 (List.length a.features);
            check Alcotest.int "no features" 0 (List.length b.features);
            check Alcotest.int "seq len" 60 (String.length a.origin)
        | rs -> Alcotest.fail (Printf.sprintf "%d records" (List.length rs)));
    Alcotest.test_case "qualifiers parsed" `Quick (fun () ->
        match Genbank.records genbank_sample with
        | a :: _ -> (
            match List.rev a.features with
            | cds :: _ ->
                check Alcotest.string "key" "CDS" cds.key;
                check Alcotest.(list (pair string string)) "quals"
                  [ ("gene", "KIN1"); ("db_xref", "UniProt:P12345"); ("pseudo", "") ]
                  cds.qualifiers
            | [] -> Alcotest.fail "no features")
        | [] -> Alcotest.fail "no records");
    Alcotest.test_case "catalog shape" `Quick (fun () ->
        let cat = Genbank.parse genbank_sample in
        check Alcotest.int "entries" 2
          (Relation.cardinality (Catalog.find_exn cat "entry"));
        check Alcotest.int "features" 2
          (Relation.cardinality (Catalog.find_exn cat "feature"));
        check Alcotest.int "qualifiers" 4
          (Relation.cardinality (Catalog.find_exn cat "qualifier"));
        check Alcotest.int "seqs" 2
          (Relation.cardinality (Catalog.find_exn cat "genbank_seq")));
    Alcotest.test_case "render/parse roundtrip" `Quick (fun () ->
        let rs = Genbank.records genbank_sample in
        check Alcotest.bool "roundtrip" true
          (Genbank.records (Genbank.render rs) = rs));
    Alcotest.test_case "sniffed" `Quick (fun () ->
        check Alcotest.bool "genbank" true
          (Import.sniff genbank_sample = Some Import.Genbank_flat));
    Alcotest.test_case "discovery finds entry as primary" `Quick (fun () ->
        (* needs a few more records so uniqueness probing is meaningful *)
        let more =
          List.init 6 (fun i ->
              { Genbank.locus = Printf.sprintf "L%dX" i;
                definition =
                  String.concat " " (List.init (1 + (i mod 5)) (fun _ -> "word"));
                accession = Printf.sprintf "GB%04d%d" (1000 + (i * 37)) i;
                organism = "Mus musculus";
                features =
                  [ { Genbank.key = "CDS"; location = "1..9";
                      qualifiers = [ ("db_xref", Printf.sprintf "X:%d" i) ] } ];
                origin = String.concat "" (List.init (3 + i) (fun _ -> "acgt")) })
        in
        let doc = genbank_sample ^ Genbank.render more in
        let cat = Genbank.parse doc in
        let sp = Aladin_discovery.Source_profile.analyze cat in
        check
          Alcotest.(option (pair string string))
          "entry.accession"
          (Some ("entry", "accession"))
          (Aladin_discovery.Source_profile.primary_accession sp);
        (* qualifiers sit two FK hops below entry and still get owners *)
        let om =
          match
            Aladin_links.Profile_list.entries
              (Aladin_links.Profile_list.of_profiles [ sp ])
          with
          | [ e ] -> e.owner
          | _ -> Alcotest.fail "one entry expected"
        in
        check Alcotest.bool "qualifier rows owned" true
          (Aladin_links.Owner_map.owners om ~relation:"qualifier" ~row:0 <> []));
  ]

let embl_sample =
  "ID   HSKIN1; SV 1; linear; mRNA; STD; HUM; 60 BP.\n\
   AC   X51234;\n\
   DE   Human alpha kinase mRNA\n\
   OS   Homo sapiens.\n\
   FT   source          1..60\n\
   FT                   /organism=\"Homo sapiens\"\n\
   FT   CDS             1..60\n\
   FT                   /gene=\"KIN1\"\n\
   FT                   /db_xref=\"UniProt:P12345\"\n\
   SQ   Sequence 60 BP;\n\
   \     atggcgatcg atcgatcgta atggcgatcg atcgatcgta atggcgatcg atcgatcgta\n\
   //\n\
   ID   SCTRP9; SV 2; linear; mRNA; STD; FUN; 30 BP.\n\
   AC   Y00021;\n\
   DE   Yeast transporter fragment\n\
   OS   Saccharomyces cerevisiae.\n\
   SQ   Sequence 30 BP;\n\
   \     acgtacgtac gtacgtacgt acgtacgtac\n\
   //\n"

let embl_tests =
  [
    Alcotest.test_case "records parsed" `Quick (fun () ->
        match Embl.records embl_sample with
        | [ a; b ] ->
            check Alcotest.string "locus" "HSKIN1" a.locus;
            check Alcotest.string "accession" "X51234" a.accession;
            check Alcotest.string "organism" "Homo sapiens" a.organism;
            check Alcotest.int "features" 2 (List.length a.features);
            check Alcotest.int "seq" 60 (String.length a.origin);
            check Alcotest.int "no features" 0 (List.length b.features)
        | rs -> Alcotest.fail (Printf.sprintf "%d records" (List.length rs)));
    Alcotest.test_case "qualifiers" `Quick (fun () ->
        match Embl.records embl_sample with
        | a :: _ -> (
            match List.rev a.features with
            | cds :: _ ->
                check Alcotest.(list (pair string string)) "quals"
                  [ ("gene", "KIN1"); ("db_xref", "UniProt:P12345") ]
                  cds.qualifiers
            | [] -> Alcotest.fail "no features")
        | [] -> Alcotest.fail "no records");
    Alcotest.test_case "catalog shape" `Quick (fun () ->
        let cat = Embl.parse embl_sample in
        check Alcotest.int "entries" 2
          (Relation.cardinality (Catalog.find_exn cat "entry"));
        check Alcotest.int "qualifiers" 3
          (Relation.cardinality (Catalog.find_exn cat "qualifier"));
        check Alcotest.int "seqs" 2
          (Relation.cardinality (Catalog.find_exn cat "embl_seq")));
    Alcotest.test_case "render/parse roundtrip" `Quick (fun () ->
        let rs = Embl.records embl_sample in
        check Alcotest.bool "roundtrip" true (Embl.records (Embl.render rs) = rs));
    Alcotest.test_case "sniffed as embl, not swissprot" `Quick (fun () ->
        check Alcotest.bool "embl" true (Import.sniff embl_sample = Some Import.Embl_flat);
        check Alcotest.bool "swissprot unchanged" true
          (Import.sniff sample_swissprot = Some Import.Swissprot_flat));
  ]

let xml_tests =
  [
    Alcotest.test_case "parse nested" `Quick (fun () ->
        match Xml.parse "<a x='1'><b>hello</b><b>world</b></a>" with
        | Xml.Element { tag = "a"; attrs = [ ("x", "1") ]; children } ->
            check Alcotest.int "children" 2 (List.length children)
        | _ -> Alcotest.fail "bad parse");
    Alcotest.test_case "entities decoded" `Quick (fun () ->
        let n = Xml.parse "<a>x &amp; y &lt;z&gt;</a>" in
        check Alcotest.string "text" "x & y <z>" (Xml.text_content n));
    Alcotest.test_case "cdata" `Quick (fun () ->
        let n = Xml.parse "<a><![CDATA[1 < 2 & 3]]></a>" in
        check Alcotest.string "raw" "1 < 2 & 3" (Xml.text_content n));
    Alcotest.test_case "comments and pi skipped" `Quick (fun () ->
        let n = Xml.parse "<?xml version='1.0'?><!-- hi --><a><!-- in --><b/></a>" in
        check Alcotest.int "one child" 1 (List.length (Xml.children_named "b" n)));
    Alcotest.test_case "self-closing" `Quick (fun () ->
        match Xml.parse "<a><b attr=\"v\"/></a>" with
        | n -> (
            match Xml.children_named "b" n with
            | [ b ] -> check Alcotest.(option string) "attr" (Some "v") (Xml.attr "attr" b)
            | _ -> Alcotest.fail "no b"));
    Alcotest.test_case "mismatched tag raises" `Quick (fun () ->
        match Xml.parse "<a><b></a></b>" with
        | exception Xml.Parse_error _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "render escapes" `Quick (fun () ->
        let n = Xml.Element { tag = "a"; attrs = [ ("k", "v&w") ]; children = [ Xml.Text "<x>" ] } in
        check Alcotest.string "rendered" "<a k=\"v&amp;w\">&lt;x&gt;</a>" (Xml.render n));
    Alcotest.test_case "render/parse stable" `Quick (fun () ->
        let doc = "<root><item id=\"1\">alpha</item><item id=\"2\">beta</item></root>" in
        let n = Xml.parse doc in
        check Alcotest.string "stable" doc (Xml.render (Xml.parse (Xml.render n))));
  ]

let xml_shred_tests =
  [
    Alcotest.test_case "tables per tag" `Quick (fun () ->
        let cat =
          Xml_shred.shred_string
            "<db><prot id=\"P1\"><name>alpha</name></prot><prot id=\"P2\"/></db>"
        in
        check Alcotest.(list string) "tables" [ "db"; "prot"; "name" ]
          (Catalog.relation_names cat);
        check Alcotest.int "prots" 2
          (Relation.cardinality (Catalog.find_exn cat "prot")));
    Alcotest.test_case "parent ids" `Quick (fun () ->
        let cat = Xml_shred.shred_string "<db><prot id=\"P1\"/></db>" in
        let prot = Catalog.find_exn cat "prot" in
        check Alcotest.bool "parent is db" true
          (Relation.value prot 0 "parent_id" = Value.Int 1);
        let db = Catalog.find_exn cat "db" in
        check Alcotest.bool "root parent null" true
          (Value.is_null (Relation.value db 0 "parent_id")));
    Alcotest.test_case "attribute columns unioned" `Quick (fun () ->
        let cat =
          Xml_shred.shred_string "<r><e a=\"1\"/><e b=\"2\"/></r>"
        in
        let e = Catalog.find_exn cat "e" in
        check Alcotest.bool "has a" true (Schema.mem (Relation.schema e) "a");
        check Alcotest.bool "has b" true (Schema.mem (Relation.schema e) "b"));
    Alcotest.test_case "content column" `Quick (fun () ->
        let cat = Xml_shred.shred_string "<r><e>some text</e></r>" in
        let e = Catalog.find_exn cat "e" in
        check Alcotest.bool "text" true
          (Relation.value e 0 "content" = Value.Text "some text"));
  ]

let dump_tests =
  [
    Alcotest.test_case "constraints roundtrip" `Quick (fun () ->
        let cs =
          [ Constraint_def.Unique { relation = "t"; attribute = "a" };
            Constraint_def.Primary_key { relation = "t"; attribute = "b" };
            Constraint_def.Foreign_key
              { src_relation = "u"; src_attribute = "x"; dst_relation = "t";
                dst_attribute = "b" } ]
        in
        check Alcotest.bool "roundtrip" true
          (Dump.parse_constraints (Dump.render_constraints cs) = (cs, [])));
    Alcotest.test_case "comments skipped" `Quick (fun () ->
        check Alcotest.bool "none" true
          (Dump.parse_constraints "# a comment\n\n" = ([], [])));
    Alcotest.test_case "bad line reported, not raised" `Quick (fun () ->
        match Dump.parse_constraints "nonsense line here extra tokens yes" with
        | [], [ (1, reason) ] ->
            check Alcotest.bool "reason" true
              (Aladin_text.Strdist.contains ~needle:"constraint" reason)
        | _ -> Alcotest.fail "expected one reported bad line");
    Alcotest.test_case "load from strings" `Quick (fun () ->
        let cat = Dump.load ~name:"s" [ ("t", "a,b\n1,x\n2,y\n") ] in
        check Alcotest.int "rows" 2 (Relation.cardinality (Catalog.find_exn cat "t")));
    Alcotest.test_case "save/load dir" `Quick (fun () ->
        let dir = Filename.temp_file "aladin" "" in
        Sys.remove dir;
        let cat = Dump.load ~name:"s" [ ("t", "a,b\n1,x\n") ] in
        Catalog.declare cat (Constraint_def.Unique { relation = "t"; attribute = "a" });
        (match Dump.save_dir cat dir with
        | Ok () -> ()
        | Error msg -> Alcotest.fail ("save_dir: " ^ msg));
        let cat2, errs = Dump.load_dir ~name:"s2" dir in
        check Alcotest.int "no report" 0 (List.length errs);
        check Alcotest.int "rows" 1 (Relation.cardinality (Catalog.find_exn cat2 "t"));
        check Alcotest.int "constraints" 1 (List.length (Catalog.constraints cat2)));
  ]

let import_tests =
  [
    Alcotest.test_case "sniff formats" `Quick (fun () ->
        let fmt d = Import.sniff d in
        check Alcotest.bool "fasta" true (fmt ">X1 d\nACGT\n" = Some Import.Fasta_format);
        check Alcotest.bool "xml" true (fmt "<a/>" = Some Import.Xml_format);
        check Alcotest.bool "obo" true (fmt obo_sample = Some Import.Obo_format);
        check Alcotest.bool "pdb" true (fmt pdb_sample = Some Import.Pdb_format);
        check Alcotest.bool "swissprot" true
          (fmt sample_swissprot = Some Import.Swissprot_flat);
        check Alcotest.bool "csv" true (fmt "a,b\n1,2\n" = Some Import.Csv_dump);
        check Alcotest.bool "unknown" true (fmt "" = None));
    Alcotest.test_case "import_string dispatches" `Quick (fun () ->
        match Import.import_string ~name:"x" ">A d\nACGT\n" with
        | Ok im ->
            check Alcotest.bool "entry table" true (Catalog.mem im.catalog "entry");
            check Alcotest.int "no record errors" 0
              (List.length im.record_errors)
        | Error e -> Alcotest.fail (Import.Import_error.to_string e));
    Alcotest.test_case "unsniffable is a typed error" `Quick (fun () ->
        match Import.import_string ~name:"x" "" with
        | Error e ->
            check Alcotest.bool "unrecognized" true
              (e.kind = Import.Import_error.Unrecognized)
        | Ok _ -> Alcotest.fail "no error");
  ]

let all_tests () =
  [
    ("formats.line_format", line_format_tests);
    ("formats.swissprot", swissprot_tests);
    ("formats.fasta", fasta_tests);
    ("formats.genbank", genbank_tests);
    ("formats.embl", embl_tests);
    ("formats.obo", obo_tests);
    ("formats.pdb_flat", pdb_tests);
    ("formats.xml", xml_tests);
    ("formats.xml_shred", xml_shred_tests);
    ("formats.dump", dump_tests);
    ("formats.import", import_tests);
  ]

let embl_discovery_tests =
  [
    Alcotest.test_case "discovery on an EMBL source" `Quick (fun () ->
        (* pad with generated records so uniqueness probing is meaningful *)
        let more =
          List.init 6 (fun i ->
              { Genbank.locus = Printf.sprintf "LOC%d" i;
                definition =
                  String.concat " " (List.init (1 + (i mod 5)) (fun _ -> "word"));
                accession = Printf.sprintf "EM%04d%d" (2000 + (i * 41)) i;
                organism = "Mus musculus";
                features =
                  [ { Genbank.key = "CDS"; location = "1..9";
                      qualifiers = [ ("db_xref", Printf.sprintf "Y:%d" i) ] } ];
                origin = String.concat "" (List.init (3 + i) (fun _ -> "acgt")) })
        in
        let doc = embl_sample ^ Embl.render more in
        let sp = Aladin_discovery.Source_profile.analyze (Embl.parse doc) in
        check
          Alcotest.(option (pair string string))
          "entry.accession"
          (Some ("entry", "accession"))
          (Aladin_discovery.Source_profile.primary_accession sp));
  ]

let tests = all_tests () @ [ ("formats.embl_discovery", embl_discovery_tests) ]
