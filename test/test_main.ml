let () =
  Alcotest.run "aladin"
    (T_relational.tests @ T_seq.tests @ T_textmine.tests @ T_formats.tests
   @ T_discovery.tests @ T_linkdisc.tests @ T_dupdetect.tests
   @ T_metadata.tests @ T_obs.tests @ T_par.tests @ T_access.tests @ T_datagen.tests
   @ T_eval.tests @ T_core.tests @ T_resilience.tests @ T_serve.tests @ T_store.tests
   @ T_fuzz.tests)
