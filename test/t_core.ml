open Aladin
open Aladin_relational

let check = Alcotest.check

let small_corpus =
  lazy
    (Aladin_datagen.Corpus.generate
       {
         Aladin_datagen.Corpus.default_params with
         universe =
           { Aladin_datagen.Universe.default_params with n_proteins = 24;
             n_genes = 10; n_structures = 8; n_diseases = 4; n_terms = 8;
             n_families = 3 };
       })

let warehouse = lazy (Warehouse.integrate (Lazy.force small_corpus).catalogs)

let warehouse_tests =
  [
    Alcotest.test_case "all sources integrated" `Quick (fun () ->
        let w = Lazy.force warehouse in
        check Alcotest.int "eight" 8 (List.length (Warehouse.sources w)));
    Alcotest.test_case "every primary discovered correctly" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let c = Lazy.force small_corpus in
        List.iter
          (fun (sg : Aladin_datagen.Gold.source_gold) ->
            match Warehouse.profile w sg.source with
            | None -> Alcotest.fail ("no profile for " ^ sg.source)
            | Some sp ->
                check
                  Alcotest.(option (pair string string))
                  sg.source
                  (Some (sg.primary_relation, sg.accession_attribute))
                  (Aladin_discovery.Source_profile.primary_accession sp))
          c.gold.sources);
    Alcotest.test_case "links discovered" `Quick (fun () ->
        let w = Lazy.force warehouse in
        check Alcotest.bool "nonempty" true (Warehouse.links w <> []);
        check Alcotest.bool "report" true (Warehouse.link_report w <> None));
    Alcotest.test_case "xref recall against gold" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let c = Lazy.force small_corpus in
        let predicted =
          Warehouse.links w
          |> List.filter (fun (l : Aladin_links.Link.t) -> l.kind = Aladin_links.Link.Xref)
          |> List.map (fun (l : Aladin_links.Link.t) ->
                 Aladin_eval.Metrics.pair_key
                   (Aladin_links.Objref.to_string l.src)
                   (Aladin_links.Objref.to_string l.dst))
        in
        let expected =
          List.map (fun (a, b) -> Aladin_eval.Metrics.pair_key a b) c.gold.xrefs
        in
        let s = Aladin_eval.Metrics.evaluate ~expected ~predicted in
        check Alcotest.bool "recall >= 0.95" true (s.recall >= 0.95);
        check Alcotest.bool "precision >= 0.95" true (s.precision >= 0.95));
    Alcotest.test_case "duplicates flagged between protein sources" `Quick (fun () ->
        let w = Lazy.force warehouse in
        match Warehouse.duplicates w with
        | None -> Alcotest.fail "no dup result"
        | Some d -> check Alcotest.bool "clusters" true (d.clusters <> []));
    Alcotest.test_case "repository populated" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let repo = Warehouse.repository w in
        check Alcotest.int "sources" 8
          (List.length (Aladin_metadata.Repository.sources repo));
        check Alcotest.bool "correspondences" true
          (Aladin_metadata.Repository.correspondences repo <> []));
    Alcotest.test_case "run report covers five steps" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.create () in
        match c.catalogs with
        | first :: _ ->
            let report = Warehouse.add_source w first in
            check Alcotest.int "five" 5 (List.length report.steps);
            check
              Alcotest.(list string)
              "step names"
              [ "import"; "primary discovery"; "secondary discovery";
                "link discovery"; "duplicate detection" ]
              (List.map
                 (fun (s : Warehouse.Run_report.step_report) -> s.step)
                 report.steps);
            check Alcotest.bool "clean" true
              (Warehouse.Run_report.is_clean report);
            check Alcotest.bool "stored in repository" true
              (Warehouse.run_report w (Catalog.name first) <> None)
        | [] -> Alcotest.fail "no catalogs");
    Alcotest.test_case "incremental equals batch" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let batch = Lazy.force warehouse in
        let inc = Warehouse.create () in
        List.iter (fun cat -> ignore (Warehouse.add_source inc cat)) c.catalogs;
        check Alcotest.int "same links"
          (List.length (Warehouse.links batch))
          (List.length (Warehouse.links inc)));
    Alcotest.test_case "incremental homology equals full recompute" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let inc = Lazy.force warehouse in
        let full =
          Warehouse.integrate
            ~config:{ Config.default with incremental_seq = false }
            c.catalogs
        in
        let seq_keys w =
          Warehouse.links w
          |> List.filter (fun (l : Aladin_links.Link.t) ->
                 l.kind = Aladin_links.Link.Seq_similarity)
          |> List.map (fun (l : Aladin_links.Link.t) ->
                 Aladin_eval.Metrics.pair_key
                   (Aladin_links.Objref.to_string l.src)
                   (Aladin_links.Objref.to_string l.dst))
          |> List.sort_uniq String.compare
        in
        check Alcotest.(list string) "identical seq links" (seq_keys full)
          (seq_keys inc));
  ]

let table_access_tests =
  [
    Alcotest.test_case "resolve qualified" `Quick (fun () ->
        let w = Lazy.force warehouse in
        check Alcotest.bool "uniprot.entry" true
          (Warehouse.resolve_table w "uniprot.entry" <> None));
    Alcotest.test_case "resolve unique bare name" `Quick (fun () ->
        let w = Lazy.force warehouse in
        (* "structure" exists only in pdb *)
        check Alcotest.bool "structure" true
          (Warehouse.resolve_table w "structure" <> None));
    Alcotest.test_case "ambiguous bare name none" `Quick (fun () ->
        let w = Lazy.force warehouse in
        (* "comment" exists in several sources *)
        check Alcotest.bool "comment ambiguous" true
          (Warehouse.resolve_table w "comment" = None));
    Alcotest.test_case "sql over warehouse" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let r = Warehouse.sql w "SELECT accession FROM uniprot.entry LIMIT 5" in
        check Alcotest.int "five" 5 (Relation.cardinality r));
    Alcotest.test_case "sql join across relations" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let r =
          Warehouse.sql w
            "SELECT accession, seq_text FROM uniprot.entry JOIN \
             uniprot.sequence_data ON uniprot.entry.entry_id = \
             uniprot.sequence_data.entry_id LIMIT 3"
        in
        check Alcotest.bool "rows" true (Relation.cardinality r > 0));
    Alcotest.test_case "search over warehouse" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let s = Warehouse.search w in
        check Alcotest.bool "objects indexed" true
          (Aladin_access.Search.object_count s > 50));
    Alcotest.test_case "browser views an object" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let b = Warehouse.browser w in
        match Aladin_access.Browser.objects b with
        | obj :: _ ->
            check Alcotest.bool "view" true (Aladin_access.Browser.view b obj <> None)
        | [] -> Alcotest.fail "no objects");
    Alcotest.test_case "path index built" `Quick (fun () ->
        let w = Lazy.force warehouse in
        ignore (Warehouse.path_index w));
    Alcotest.test_case "sql over a shredded XML source" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let r =
          Warehouse.sql w
            "SELECT COUNT(*) FROM bind.partner JOIN bind.interaction ON \
             bind.partner.parent_id = bind.interaction.interaction_id"
        in
        match (Relation.row r 0).(0) with
        | Value.Int n -> check Alcotest.bool "partners joined" true (n > 0)
        | _ -> Alcotest.fail "not an int");
    Alcotest.test_case "aggregate over warehouse" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let r =
          Warehouse.sql w
            "SELECT organism_name, COUNT(*) FROM uniprot.entry JOIN \
             uniprot.organism ON uniprot.entry.organism_id = \
             uniprot.organism.organism_id GROUP BY organism_name"
        in
        check Alcotest.bool "groups" true (Relation.cardinality r > 1));
    Alcotest.test_case "link kinds all present" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let kinds =
          Warehouse.links w
          |> List.map (fun (l : Aladin_links.Link.t) -> l.kind)
          |> List.sort_uniq compare
        in
        List.iter
          (fun k ->
            check Alcotest.bool (Aladin_links.Link.kind_name k) true
              (List.mem k kinds))
          [ Aladin_links.Link.Xref; Aladin_links.Link.Seq_similarity;
            Aladin_links.Link.Duplicate ]);
  ]

let change_tests =
  [
    Alcotest.test_case "small change defers" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.integrate c.catalogs in
        match Warehouse.notify_change w ~source:"uniprot" ~changed_rows:1 with
        | `Defer -> ()
        | `Reanalyze -> Alcotest.fail "should defer");
    Alcotest.test_case "accumulated changes trip threshold" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.integrate c.catalogs in
        let rows =
          match Warehouse.catalog w "uniprot" with
          | Some cat -> Catalog.total_rows cat
          | None -> 0
        in
        match Warehouse.notify_change w ~source:"uniprot" ~changed_rows:rows with
        | `Reanalyze -> ()
        | `Defer -> Alcotest.fail "should reanalyze");
    Alcotest.test_case "update_source reanalyzes over threshold" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.integrate c.catalogs in
        match Warehouse.catalog w "uniprot" with
        | None -> Alcotest.fail "no catalog"
        | Some cat -> (
            let n = Catalog.total_rows cat in
            let upd = Warehouse.update_source w cat ~changed_rows:n in
            (match upd.Warehouse.outcome with
            | `Reanalyzed (r : Warehouse.Run_report.t) ->
                check Alcotest.int "steps" 5 (List.length r.steps)
            | `Deferred -> Alcotest.fail "should reanalyze");
            match upd.Warehouse.delta with
            | None -> Alcotest.fail "reanalysis should report a delta audit"
            | Some a ->
                check Alcotest.bool "recomputed pairs touch uniprot" true
                  (a.Delta.recomputed_pairs <> []
                  && List.for_all
                       (fun (x, y) -> x = "uniprot" || y = "uniprot")
                       a.Delta.recomputed_pairs);
                List.iter
                  (fun p ->
                    check Alcotest.bool "reused pair not recomputed" false
                      (List.mem p a.Delta.recomputed_pairs))
                  a.Delta.reused_pairs));
  ]

let system_tests =
  [
    Alcotest.test_case "import_file fasta" `Quick (fun () ->
        let path = Filename.temp_file "aladin" ".fasta" in
        let oc = open_out path in
        output_string oc ">Q1 test\nACGTACGT\n";
        close_out oc;
        let im =
          match Aladin_system.import_file path with
          | Ok im -> im
          | Error e -> Alcotest.fail (Aladin_system.Import_error.to_string e)
        in
        Sys.remove path;
        check Alcotest.bool "entry" true (Catalog.mem im.catalog "entry");
        check Alcotest.int "no record errors" 0 (List.length im.record_errors));
    Alcotest.test_case "integrate_paths" `Quick (fun () ->
        let path = Filename.temp_file "aladin" ".fasta" in
        let oc = open_out path in
        output_string oc ">Q1 test protein\nACGTACGTACGTACGTACGTA\n>Q2 other\nTTTTACGTACGTACGTACGTA\n";
        close_out oc;
        let w = Aladin_system.integrate_paths [ path ] in
        Sys.remove path;
        check Alcotest.int "one source" 1 (List.length (Warehouse.sources w)));
    Alcotest.test_case "summary mentions sources" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let s = Aladin_system.summary w in
        check Alcotest.bool "uniprot" true
          (Aladin_text.Strdist.contains ~needle:"uniprot" s);
        check Alcotest.bool "links line" true
          (Aladin_text.Strdist.contains ~needle:"links:" s));
  ]

let feedback_tests =
  [
    Alcotest.test_case "reject_link filters" `Quick (fun () ->
        let fb = Feedback.create () in
        let l =
          Aladin_links.Link.make
            ~src:(Aladin_links.Objref.make ~source:"a" ~relation:"r" ~accession:"A1")
            ~dst:(Aladin_links.Objref.make ~source:"b" ~relation:"r" ~accession:"B1")
            ~kind:Aladin_links.Link.Duplicate ~confidence:0.8 ~evidence:"t"
        in
        Feedback.reject_link fb l;
        check Alcotest.bool "rejected" true (Feedback.is_link_rejected fb l);
        (* symmetric kinds match in either direction *)
        let flipped = { l with src = l.dst; dst = l.src } in
        check Alcotest.bool "flipped rejected" true
          (Feedback.is_link_rejected fb flipped);
        check Alcotest.int "filtered" 0 (List.length (Feedback.filter_links fb [ l ])));
    Alcotest.test_case "reject_fk filters" `Quick (fun () ->
        let fb = Feedback.create () in
        let fk =
          { Aladin_discovery.Inclusion.src_relation = "comment";
            src_attribute = "entry_id"; dst_relation = "entry";
            dst_attribute = "entry_id";
            cardinality = Aladin_discovery.Inclusion.One_to_many;
            origin = `Inferred }
        in
        Feedback.reject_fk fb ~source:"mini" fk;
        check Alcotest.bool "rejected" true (Feedback.is_fk_rejected fb ~source:"mini" fk);
        check Alcotest.bool "other source fine" false
          (Feedback.is_fk_rejected fb ~source:"other" fk);
        check Alcotest.int "filtered" 0
          (List.length (Feedback.filter_fks fb ~source:"mini" [ fk ])));
    Alcotest.test_case "save/load roundtrip" `Quick (fun () ->
        let fb = Feedback.create () in
        let l =
          Aladin_links.Link.make
            ~src:(Aladin_links.Objref.make ~source:"a" ~relation:"r" ~accession:"A1")
            ~dst:(Aladin_links.Objref.make ~source:"b" ~relation:"r" ~accession:"B1")
            ~kind:Aladin_links.Link.Xref ~confidence:0.8 ~evidence:"t"
        in
        Feedback.reject_link fb l;
        let fb2 = Feedback.load (Feedback.save fb) in
        check Alcotest.bool "persisted" true (Feedback.is_link_rejected fb2 l);
        check Alcotest.int "counts" 1 (Feedback.rejected_link_count fb2));
    Alcotest.test_case "load rejects garbage" `Quick (fun () ->
        match Feedback.load "nope" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "warehouse reject_link survives relink" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.integrate c.catalogs in
        match Warehouse.links w with
        | [] -> Alcotest.fail "no links"
        | l :: _ ->
            let before = List.length (Warehouse.links w) in
            Warehouse.reject_link w l;
            check Alcotest.int "one fewer" (before - 1)
              (List.length (Warehouse.links w));
            (* force a full re-discovery: the rejection must persist *)
            (match Warehouse.catalog w l.src.Aladin_links.Objref.source with
            | Some cat -> ignore (Warehouse.add_source w cat)
            | None -> ());
            check Alcotest.bool "still gone" true
              (not
                 (List.exists
                    (fun l2 -> Aladin_links.Link.same_endpoints l l2)
                    (Warehouse.links w))));
    Alcotest.test_case "warehouse reject_fk reanalyzes" `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.integrate c.catalogs in
        match Warehouse.profile w "uniprot" with
        | None -> Alcotest.fail "no profile"
        | Some sp ->
            (match sp.fks with
            | fk :: _ ->
                let n = List.length sp.fks in
                Warehouse.reject_fk w ~source:"uniprot" fk;
                (match Warehouse.profile w "uniprot" with
                | Some sp2 ->
                    check Alcotest.bool "fewer fks" true (List.length sp2.fks < n)
                | None -> Alcotest.fail "profile lost")
            | [] -> Alcotest.fail "no fks"));
  ]

let save_dir_exn w dir =
  match Warehouse.save_dir w dir with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("save_dir: " ^ msg)

let persistence_tests =
  [
    Alcotest.test_case "save/load roundtrip (trusted)" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let dir = Filename.temp_file "aladin" "wh" in
        Sys.remove dir;
        save_dir_exn w dir;
        let w2, report = Warehouse.load_dir dir in
        check Alcotest.bool "clean load" true
          (Aladin_store.Load_report.is_clean report);
        check Alcotest.(list string) "sources" (Warehouse.sources w)
          (Warehouse.sources w2);
        check Alcotest.int "links preserved"
          (List.length (Warehouse.links w))
          (List.length (Warehouse.links w2));
        (* browsing works on the restored warehouse *)
        let b = Warehouse.browser w2 in
        match Aladin_access.Browser.objects b with
        | obj :: _ ->
            check Alcotest.bool "view works" true
              (Aladin_access.Browser.view b obj <> None)
        | [] -> Alcotest.fail "no objects after load");
    Alcotest.test_case "load with reanalyze rediscovers" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let dir = Filename.temp_file "aladin" "wh2" in
        Sys.remove dir;
        save_dir_exn w dir;
        let w2, _report = Warehouse.load_dir ~reanalyze:true dir in
        (* re-discovery on the round-tripped data finds the same links *)
        check Alcotest.int "same link count"
          (List.length (Warehouse.links w))
          (List.length (Warehouse.links w2)));
    Alcotest.test_case "sql works after load" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let dir = Filename.temp_file "aladin" "wh3" in
        Sys.remove dir;
        save_dir_exn w dir;
        let w2, _report = Warehouse.load_dir dir in
        let n w = Relation.cardinality (Warehouse.sql w "SELECT * FROM uniprot.entry") in
        check Alcotest.int "same rows" (n w) (n w2));
    Alcotest.test_case "save refuses to clobber a non-store directory" `Quick
      (fun () ->
        let w = Lazy.force warehouse in
        let dir = Filename.temp_file "aladin" "wh4" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let oc = open_out (Filename.concat dir "precious.txt") in
        output_string oc "user data\n";
        close_out oc;
        (match Warehouse.save_dir w dir with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "clobbered a non-store directory");
        check Alcotest.bool "user file untouched" true
          (Sys.file_exists (Filename.concat dir "precious.txt")));
  ]

let link_query_warehouse_tests =
  [
    Alcotest.test_case "warehouse link_query traverses" `Quick (fun () ->
        let w = Lazy.force warehouse in
        let lq = Warehouse.link_query w in
        match Warehouse.links w with
        | (l : Aladin_links.Link.t) :: _ ->
            let hits =
              Aladin_access.Link_query.run lq ~start:[ l.src ]
                ~steps:[ Aladin_access.Link_query.step () ]
            in
            check Alcotest.bool "reaches dst" true
              (List.exists
                 (fun (h : Aladin_access.Link_query.hit) ->
                   Aladin_links.Objref.equal h.endpoint l.dst)
                 hits)
        | [] -> Alcotest.fail "no links");
  ]

let config_ok doc =
  match Config.of_string doc with
  | Ok cfg -> cfg
  | Error msg -> Alcotest.fail ("unexpected config error: " ^ msg)

let config_tests =
  [
    Alcotest.test_case "of_string overrides" `Quick (fun () ->
        let cfg =
          config_ok
            "# comment\naccession.min_length = 6\ndup.min_similarity = 0.9\nlinks.enable_text = false\n"
        in
        check Alcotest.int "min_length" 6 cfg.accession.min_length;
        check (Alcotest.float 0.001) "dup" 0.9 cfg.dup.min_similarity;
        check Alcotest.bool "text off" false cfg.linker.enable_text;
        (* untouched keys keep defaults *)
        check Alcotest.int "path len" Config.default.max_path_len cfg.max_path_len);
    Alcotest.test_case "unknown key rejected" `Quick (fun () ->
        match Config.of_string "nonsense.key = 1" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "no error");
    Alcotest.test_case "bad value reported with line number" `Quick (fun () ->
        match Config.of_string "domains = 2\naccession.min_length = soon" with
        | Error msg ->
            check Alcotest.bool "mentions line 2" true
              (Aladin_text.Strdist.contains ~needle:"line 2" msg)
        | Ok _ -> Alcotest.fail "no error");
    Alcotest.test_case "to_string/of_string roundtrip" `Quick (fun () ->
        let cfg =
          { Config.default with max_path_len = 9; change_threshold = 0.25 }
        in
        let cfg2 = config_ok (Config.to_string cfg) in
        check Alcotest.int "path len" 9 cfg2.max_path_len;
        check (Alcotest.float 0.001) "threshold" 0.25 cfg2.change_threshold);
    Alcotest.test_case "budget keys parse" `Quick (fun () ->
        let cfg =
          config_ok "budget.links.seq = 0\nbudget.links = 2.5\nbudget.dups = none"
        in
        check Alcotest.bool "seq zero" true (cfg.budgets.seq_pass = Some 0.0);
        check Alcotest.bool "links set" true (cfg.budgets.links = Some 2.5);
        check Alcotest.bool "dups off" true (cfg.budgets.dups = None));
    Alcotest.test_case "budgets roundtrip" `Quick (fun () ->
        let cfg =
          { Config.default with
            budgets = { Config.no_budgets with primary = Some 1.5 } }
        in
        let cfg2 = config_ok (Config.to_string cfg) in
        check Alcotest.bool "primary" true (cfg2.budgets.primary = Some 1.5);
        check Alcotest.bool "secondary" true (cfg2.budgets.secondary = None));
    Alcotest.test_case "bad budget rejected" `Quick (fun () ->
        match Config.of_string "budget.links = fast" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "no error");
  ]

let shell_tests =
  let shell = lazy (Shell.create (Lazy.force warehouse)) in
  let out line =
    match Shell.execute (Lazy.force shell) line with
    | `Output s -> s
    | `Quit -> Alcotest.fail "unexpected quit"
  in
  let contains needle s = Aladin_text.Strdist.contains ~needle s in
  [
    Alcotest.test_case "help lists commands" `Quick (fun () ->
        check Alcotest.bool "has search" true (contains "search" (out "help")));
    Alcotest.test_case "sources summary" `Quick (fun () ->
        check Alcotest.bool "uniprot listed" true (contains "uniprot" (out "sources")));
    Alcotest.test_case "view by accession then follow" `Quick (fun () ->
        let sh = Lazy.force shell in
        let w = Lazy.force warehouse in
        (* pick an object with links *)
        let obj =
          match Warehouse.links w with
          | (l : Aladin_links.Link.t) :: _ -> l.src
          | [] -> Alcotest.fail "no links"
        in
        (match Shell.execute sh ("view " ^ obj.source ^ " " ^ obj.accession) with
        | `Output s ->
            check Alcotest.bool "shows accession" true
              (contains obj.accession s)
        | `Quit -> Alcotest.fail "quit");
        match Shell.execute sh "follow 0" with
        | `Output s -> check Alcotest.bool "followed" true (contains "===" s)
        | `Quit -> Alcotest.fail "quit");
    Alcotest.test_case "sql through shell" `Quick (fun () ->
        check Alcotest.bool "row count shown" true
          (contains "rows" (out "sql SELECT * FROM uniprot.entry LIMIT 2")));
    Alcotest.test_case "sql error surfaced" `Quick (fun () ->
        check Alcotest.bool "error text" true (contains "error" (out "sql SELECT")));
    Alcotest.test_case "search through shell" `Quick (fun () ->
        check Alcotest.bool "some output" true (String.length (out "search kinase") > 0));
    Alcotest.test_case "unknown command" `Quick (fun () ->
        check Alcotest.bool "hint" true (contains "help" (out "frobnicate")));
    Alcotest.test_case "quit" `Quick (fun () ->
        match Shell.execute (Lazy.force shell) "quit" with
        | `Quit -> ()
        | `Output _ -> Alcotest.fail "no quit");
    Alcotest.test_case "empty line" `Quick (fun () ->
        check Alcotest.string "empty" "" (out "   "));
  ]

(* the delta contract: an incremental mutation (add onto a loaded store,
   update in place) must land on the byte-identical link set of a cold
   [integrate] over the same catalogs *)
let delta_tests =
  let render w = Aladin_access.Link_export.to_csv (Warehouse.links w) in
  [
    Alcotest.test_case "add onto a loaded store matches cold integrate"
      `Quick (fun () ->
        let c = Lazy.force small_corpus in
        let cold = render (Warehouse.integrate c.catalogs) in
        let rec split_last = function
          | [] -> Alcotest.fail "empty corpus"
          | [ x ] -> ([], x)
          | x :: rest ->
              let init, last = split_last rest in
              (x :: init, last)
        in
        let init, last = split_last c.catalogs in
        let dir = Filename.temp_file "aladin_delta" "" in
        Sys.remove dir;
        let w0 = Warehouse.integrate init in
        (match Warehouse.save_dir w0 dir with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let w1, _ = Warehouse.load_dir dir in
        ignore (Warehouse.add_source w1 last);
        check Alcotest.string "links byte-identical" cold (render w1);
        (match Warehouse.last_delta w1 with
        | None -> Alcotest.fail "add_source reported no delta audit"
        | Some a ->
            let name = Aladin_relational.Catalog.name last in
            check Alcotest.bool "every recomputed pair touches the new source"
              true
              (List.for_all
                 (fun (x, y) -> x = name || y = name)
                 a.Delta.recomputed_pairs));
        let rec rm path =
          if Sys.is_directory path then begin
            Array.iter (fun f -> rm (Filename.concat path f))
              (Sys.readdir path);
            Sys.rmdir path
          end
          else Sys.remove path
        in
        rm dir);
    Alcotest.test_case "update in place matches cold integrate" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let cold = render (Warehouse.integrate c.catalogs) in
        let w = Warehouse.integrate c.catalogs in
        (* replace a middle source with identical content: only its pairs
           recompute, and the merged links must not move a byte *)
        let cat = List.nth c.catalogs (List.length c.catalogs / 2) in
        let upd =
          Warehouse.update_source w cat ~changed_rows:(Catalog.total_rows cat)
        in
        (match upd.Warehouse.outcome with
        | `Reanalyzed _ -> ()
        | `Deferred -> Alcotest.fail "full-source change deferred");
        check Alcotest.string "links byte-identical" cold (render w));
  ]

let tests =
  [
    ("core.warehouse", warehouse_tests);
    ("core.delta", delta_tests);
    ("core.shell", shell_tests);
    ("core.config", config_tests);
    ("core.table_access", table_access_tests);
    ("core.changes", change_tests);
    ("core.system", system_tests);
    ("core.feedback", feedback_tests);
    ("core.persistence", persistence_tests);
    ("core.link_query", link_query_warehouse_tests);
  ]
