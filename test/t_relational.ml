open Aladin_relational

let check = Alcotest.check

(* ---- Vec ---- *)

let vec_tests =
  [
    Alcotest.test_case "push-get-length" `Quick (fun () ->
        let v = Vec.create () in
        for i = 0 to 99 do
          Vec.push v i
        done;
        check Alcotest.int "length" 100 (Vec.length v);
        check Alcotest.int "get 0" 0 (Vec.get v 0);
        check Alcotest.int "get 99" 99 (Vec.get v 99));
    Alcotest.test_case "empty" `Quick (fun () ->
        let v : int Vec.t = Vec.create () in
        check Alcotest.bool "is_empty" true (Vec.is_empty v);
        check Alcotest.(option int) "pop" None (Vec.pop v));
    Alcotest.test_case "pop" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        check Alcotest.(option int) "pop 3" (Some 3) (Vec.pop v);
        check Alcotest.int "len after pop" 2 (Vec.length v));
    Alcotest.test_case "set" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        Vec.set v 1 42;
        check Alcotest.(list int) "after set" [ 1; 42; 3 ] (Vec.to_list v));
    Alcotest.test_case "out-of-bounds raises" `Quick (fun () ->
        let v = Vec.of_list [ 1 ] in
        Alcotest.check_raises "get" (Invalid_argument "Vec: index 1 out of bounds (length 1)")
          (fun () -> ignore (Vec.get v 1)));
    Alcotest.test_case "map-filter-fold" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3; 4 ] in
        check Alcotest.(list int) "map" [ 2; 4; 6; 8 ]
          (Vec.to_list (Vec.map (fun x -> 2 * x) v));
        check Alcotest.(list int) "filter" [ 2; 4 ]
          (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
        check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v));
    Alcotest.test_case "exists-forall-find" `Quick (fun () ->
        let v = Vec.of_list [ 1; 3; 5 ] in
        check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
        check Alcotest.bool "for_all odd" true (Vec.for_all (fun x -> x mod 2 = 1) v);
        check Alcotest.(option int) "find" (Some 3) (Vec.find_opt (fun x -> x > 2) v));
    Alcotest.test_case "append and sort" `Quick (fun () ->
        let a = Vec.of_list [ 3; 1 ] and b = Vec.of_list [ 2 ] in
        Vec.append a b;
        Vec.sort Int.compare a;
        check Alcotest.(list int) "sorted" [ 1; 2; 3 ] (Vec.to_list a));
    Alcotest.test_case "clear" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2 ] in
        Vec.clear v;
        check Alcotest.int "cleared" 0 (Vec.length v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:100
         QCheck.(list int)
         (fun xs -> Vec.to_list (Vec.of_list xs) = xs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"of_array/to_array roundtrip" ~count:100
         QCheck.(array int)
         (fun a -> Vec.to_array (Vec.of_array a) = a));
  ]

(* ---- Value ---- *)

let value_tests =
  [
    Alcotest.test_case "of_string inference" `Quick (fun () ->
        check Alcotest.bool "int" true (Value.of_string "42" = Value.Int 42);
        check Alcotest.bool "neg int" true (Value.of_string "-7" = Value.Int (-7));
        check Alcotest.bool "float" true (Value.of_string "3.5" = Value.Float 3.5);
        check Alcotest.bool "text" true (Value.of_string "P12345" = Value.Text "P12345");
        check Alcotest.bool "empty null" true (Value.of_string "" = Value.Null);
        check Alcotest.bool "backslash-N null" true (Value.of_string "\\N" = Value.Null));
    Alcotest.test_case "text never infers" `Quick (fun () ->
        check Alcotest.bool "kept text" true (Value.text "1234" = Value.Text "1234"));
    Alcotest.test_case "compare order" `Quick (fun () ->
        check Alcotest.bool "null first" true (Value.compare Value.Null (Value.Int 0) < 0);
        check Alcotest.bool "num before text" true
          (Value.compare (Value.Int 5) (Value.Text "a") < 0);
        check Alcotest.bool "int vs float" true
          (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
        check Alcotest.bool "int float equal" true
          (Value.compare (Value.Int 2) (Value.Float 2.0) = 0));
    Alcotest.test_case "contains_alpha" `Quick (fun () ->
        check Alcotest.bool "P123" true (Value.contains_alpha (Value.Text "P123"));
        check Alcotest.bool "123" false (Value.contains_alpha (Value.Text "123"));
        check Alcotest.bool "int" false (Value.contains_alpha (Value.Int 9)));
    Alcotest.test_case "to_string and length" `Quick (fun () ->
        check Alcotest.string "null" "" (Value.to_string Value.Null);
        check Alcotest.string "int" "42" (Value.to_string (Value.Int 42));
        check Alcotest.int "len" 5 (Value.length (Value.Text "abcde")));
    Alcotest.test_case "hash consistent with equal" `Quick (fun () ->
        check Alcotest.int "text hash" (Value.hash (Value.Text "x"))
          (Value.hash (Value.Text "x"));
        check Alcotest.int "int/float hash" (Value.hash (Value.Int 3))
          (Value.hash (Value.Float 3.0)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compare reflexive" ~count:200
         QCheck.(oneof [ map (fun i -> Value.Int i) int;
                         map (fun s -> Value.Text s) string ])
         (fun v -> Value.compare v v = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compare antisymmetric" ~count:200
         QCheck.(pair int int)
         (fun (a, b) ->
           let va = Value.Int a and vb = Value.Int b in
           Value.compare va vb = -Value.compare vb va));
  ]

(* ---- Schema ---- *)

let schema_tests =
  [
    Alcotest.test_case "index case-insensitive" `Quick (fun () ->
        let s = Schema.of_names [ "Accession"; "Name" ] in
        check Alcotest.(option int) "lower" (Some 0) (Schema.index_of s "accession");
        check Alcotest.(option int) "upper" (Some 1) (Schema.index_of s "NAME");
        check Alcotest.(option int) "missing" None (Schema.index_of s "nope"));
    Alcotest.test_case "duplicate raises" `Quick (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Schema.make: duplicate attribute \"A\"") (fun () ->
            ignore (Schema.of_names [ "a"; "A" ])));
    Alcotest.test_case "rename and concat" `Quick (fun () ->
        let s = Schema.of_names [ "a"; "b" ] in
        let r = Schema.rename s ~prefix:"t." in
        check Alcotest.(list string) "renamed" [ "t.a"; "t.b" ] (Schema.names r);
        let c = Schema.concat s r in
        check Alcotest.int "concat arity" 4 (Schema.arity c));
    Alcotest.test_case "equal" `Quick (fun () ->
        check Alcotest.bool "same" true
          (Schema.equal (Schema.of_names [ "x" ]) (Schema.of_names [ "X" ]));
        check Alcotest.bool "diff" false
          (Schema.equal (Schema.of_names [ "x" ]) (Schema.of_names [ "y" ])));
  ]

(* ---- Relation ---- *)

let sample_relation () =
  let r = Relation.create ~name:"t" (Schema.of_names [ "id"; "acc"; "v" ]) in
  Relation.insert r [| Value.Int 1; Value.text "A1"; Value.Int 10 |];
  Relation.insert r [| Value.Int 2; Value.text "B2"; Value.Int 10 |];
  Relation.insert r [| Value.Int 3; Value.text "C3"; Value.Null |];
  r

let relation_tests =
  [
    Alcotest.test_case "cardinality and column" `Quick (fun () ->
        let r = sample_relation () in
        check Alcotest.int "card" 3 (Relation.cardinality r);
        check Alcotest.int "col len" 3 (Array.length (Relation.column r "acc")));
    Alcotest.test_case "arity mismatch raises" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.check_raises "arity"
          (Invalid_argument "Relation.insert: row arity 1 <> schema arity 3 in t")
          (fun () -> Relation.insert r [| Value.Int 9 |]));
    Alcotest.test_case "is_unique" `Quick (fun () ->
        let r = sample_relation () in
        check Alcotest.bool "acc unique" true (Relation.is_unique r "acc");
        check Alcotest.bool "v not (dups)" false (Relation.is_unique r "v"));
    Alcotest.test_case "unique ignores nulls" `Quick (fun () ->
        let r = Relation.create ~name:"u" (Schema.of_names [ "a" ]) in
        Relation.insert r [| Value.Null |];
        Relation.insert r [| Value.Int 1 |];
        Relation.insert r [| Value.Null |];
        check Alcotest.bool "unique" true (Relation.is_unique r "a"));
    Alcotest.test_case "empty column not unique" `Quick (fun () ->
        let r = Relation.create ~name:"e" (Schema.of_names [ "a" ]) in
        check Alcotest.bool "not unique" false (Relation.is_unique r "a"));
    Alcotest.test_case "distinct skips nulls" `Quick (fun () ->
        let r = sample_relation () in
        check Alcotest.int "distinct v" 1 (Relation.distinct_count r "v"));
    Alcotest.test_case "find_row" `Quick (fun () ->
        let r = sample_relation () in
        (match Relation.find_row r "acc" (Value.text "B2") with
        | Some row -> check Alcotest.bool "row id" true (row.(0) = Value.Int 2)
        | None -> Alcotest.fail "not found");
        check Alcotest.bool "missing none" true
          (Relation.find_row r "acc" (Value.text "ZZ") = None));
    Alcotest.test_case "unknown column raises" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.check_raises "Not_found" Not_found (fun () ->
            ignore (Relation.column r "nope")));
    Alcotest.test_case "insert_strings infers" `Quick (fun () ->
        let r = Relation.create ~name:"s" (Schema.of_names [ "a"; "b" ]) in
        Relation.insert_strings r [ "7"; "XY" ];
        check Alcotest.bool "int inferred" true (Relation.value r 0 "a" = Value.Int 7));
  ]

(* ---- Catalog ---- *)

let catalog_tests =
  [
    Alcotest.test_case "add and find" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let _ = Catalog.create_relation c ~name:"Tbl" (Schema.of_names [ "a" ]) in
        check Alcotest.bool "found lower" true (Catalog.find c "tbl" <> None);
        check Alcotest.(list string) "names" [ "Tbl" ] (Catalog.relation_names c));
    Alcotest.test_case "duplicate relation raises" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let _ = Catalog.create_relation c ~name:"t" (Schema.of_names [ "a" ]) in
        Alcotest.check_raises "dup"
          (Invalid_argument "Catalog.add: duplicate relation \"T\" in source src")
          (fun () -> ignore (Catalog.create_relation c ~name:"T" (Schema.of_names [ "a" ]))));
    Alcotest.test_case "declare checks endpoints" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let _ = Catalog.create_relation c ~name:"t" (Schema.of_names [ "a" ]) in
        Catalog.declare c (Constraint_def.Unique { relation = "t"; attribute = "a" });
        check Alcotest.bool "declared" true
          (Catalog.declared_unique c ~relation:"T" ~attribute:"A");
        Alcotest.check_raises "bad attr"
          (Invalid_argument "Catalog.declare (unique): unknown attribute t.zz")
          (fun () ->
            Catalog.declare c (Constraint_def.Unique { relation = "t"; attribute = "zz" })));
    Alcotest.test_case "declare dedups" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let _ = Catalog.create_relation c ~name:"t" (Schema.of_names [ "a" ]) in
        let u = Constraint_def.Unique { relation = "t"; attribute = "a" } in
        Catalog.declare c u;
        Catalog.declare c u;
        check Alcotest.int "one" 1 (List.length (Catalog.constraints c)));
    Alcotest.test_case "declared_fks filters" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let _ = Catalog.create_relation c ~name:"t" (Schema.of_names [ "a" ]) in
        let _ = Catalog.create_relation c ~name:"u" (Schema.of_names [ "b" ]) in
        Catalog.declare c (Constraint_def.Primary_key { relation = "t"; attribute = "a" });
        Catalog.declare c
          (Constraint_def.Foreign_key
             { src_relation = "u"; src_attribute = "b"; dst_relation = "t";
               dst_attribute = "a" });
        check Alcotest.int "fks" 1 (List.length (Catalog.declared_fks c)));
    Alcotest.test_case "total_rows" `Quick (fun () ->
        let c = Catalog.create ~name:"src" in
        let t = Catalog.create_relation c ~name:"t" (Schema.of_names [ "a" ]) in
        Relation.insert t [| Value.Int 1 |];
        Relation.insert t [| Value.Int 2 |];
        check Alcotest.int "rows" 2 (Catalog.total_rows c));
  ]

(* ---- Col_stats ---- *)

let col_stats_tests =
  [
    Alcotest.test_case "basic stats" `Quick (fun () ->
        let vals =
          [| Value.text "AB12"; Value.text "CD34"; Value.Null; Value.text "AB12" |]
        in
        let cs = Col_stats.of_column ~relation:"r" ~attribute:"a" vals in
        check Alcotest.int "rows" 4 cs.rows;
        check Alcotest.int "nulls" 1 cs.nulls;
        check Alcotest.int "distinct" 2 cs.distinct;
        check Alcotest.int "minlen" 4 cs.min_len;
        check Alcotest.int "maxlen" 4 cs.max_len;
        check Alcotest.bool "not unique" false cs.all_unique;
        check (Alcotest.float 0.001) "alpha" 1.0 cs.alpha_frac;
        check (Alcotest.float 0.001) "numeric" 0.0 cs.numeric_frac);
    Alcotest.test_case "numeric fraction" `Quick (fun () ->
        let vals = [| Value.Int 1; Value.Int 2; Value.text "x" |] in
        let cs = Col_stats.of_column ~relation:"r" ~attribute:"a" vals in
        check (Alcotest.float 0.001) "numeric" (2.0 /. 3.0) cs.numeric_frac);
    Alcotest.test_case "length_spread" `Quick (fun () ->
        let vals = [| Value.text "abcd"; Value.text "abcdefgh" |] in
        let cs = Col_stats.of_column ~relation:"r" ~attribute:"a" vals in
        check (Alcotest.float 0.001) "spread" 0.5 (Col_stats.length_spread cs));
    Alcotest.test_case "empty column" `Quick (fun () ->
        let cs = Col_stats.of_column ~relation:"r" ~attribute:"a" [||] in
        check Alcotest.bool "not unique" false cs.all_unique;
        check (Alcotest.float 0.001) "spread" 0.0 (Col_stats.length_spread cs));
    Alcotest.test_case "sample capped" `Quick (fun () ->
        let vals = Array.init 100 (fun i -> Value.Int i) in
        let cs = Col_stats.of_column ~relation:"r" ~attribute:"a" vals in
        check Alcotest.int "sample" Col_stats.sample_size (List.length cs.sample));
    Alcotest.test_case "of_relation order" `Quick (fun () ->
        let r = sample_relation () in
        let stats = Col_stats.of_relation r in
        check Alcotest.(list string) "attrs" [ "id"; "acc"; "v" ]
          (List.map (fun (c : Col_stats.t) -> c.attribute) stats));
  ]

(* ---- Table_ops ---- *)

let table_ops_tests =
  [
    Alcotest.test_case "select" `Quick (fun () ->
        let r = sample_relation () in
        let out = Table_ops.select r (fun row -> row.(2) = Value.Int 10) in
        check Alcotest.int "rows" 2 (Relation.cardinality out));
    Alcotest.test_case "project" `Quick (fun () ->
        let r = sample_relation () in
        let out = Table_ops.project r [ "acc" ] in
        check Alcotest.int "arity" 1 (Relation.arity out);
        check Alcotest.int "rows" 3 (Relation.cardinality out));
    Alcotest.test_case "hash_join" `Quick (fun () ->
        let a = Relation.create ~name:"a" (Schema.of_names [ "k"; "x" ]) in
        Relation.insert a [| Value.Int 1; Value.text "one" |];
        Relation.insert a [| Value.Int 2; Value.text "two" |];
        let b = Relation.create ~name:"b" (Schema.of_names [ "k"; "y" ]) in
        Relation.insert b [| Value.Int 2; Value.text "deux" |];
        Relation.insert b [| Value.Int 2; Value.text "zwei" |];
        let j = Table_ops.hash_join ~left:a ~right:b ~on:("k", "k") in
        check Alcotest.int "rows" 2 (Relation.cardinality j);
        check Alcotest.int "arity" 4 (Relation.arity j));
    Alcotest.test_case "join skips null keys" `Quick (fun () ->
        let a = Relation.create ~name:"a" (Schema.of_names [ "k" ]) in
        Relation.insert a [| Value.Null |];
        let b = Relation.create ~name:"b" (Schema.of_names [ "k" ]) in
        Relation.insert b [| Value.Null |];
        let j = Table_ops.hash_join ~left:a ~right:b ~on:("k", "k") in
        check Alcotest.int "no rows" 0 (Relation.cardinality j));
    Alcotest.test_case "semi_join" `Quick (fun () ->
        let r = sample_relation () in
        let other = Relation.create ~name:"o" (Schema.of_names [ "ref" ]) in
        Relation.insert other [| Value.text "A1" |];
        let out = Table_ops.semi_join ~left:r ~right:other ~on:("acc", "ref") in
        check Alcotest.int "rows" 1 (Relation.cardinality out));
    Alcotest.test_case "union compatible" `Quick (fun () ->
        let r = sample_relation () and s = sample_relation () in
        check Alcotest.int "union" 6 (Relation.cardinality (Table_ops.union r s)));
    Alcotest.test_case "union incompatible raises" `Quick (fun () ->
        let r = sample_relation () in
        let s = Relation.create ~name:"s" (Schema.of_names [ "z" ]) in
        Alcotest.check_raises "raises"
          (Invalid_argument "Table_ops.union: schemas are not union-compatible")
          (fun () -> ignore (Table_ops.union r s)));
    Alcotest.test_case "sort_by and limit" `Quick (fun () ->
        let r = sample_relation () in
        let sorted = Table_ops.sort_by r "id" in
        let top = Table_ops.limit sorted 2 in
        check Alcotest.int "limit" 2 (Relation.cardinality top);
        check Alcotest.bool "first" true ((Relation.row top 0).(0) = Value.Int 1));
    Alcotest.test_case "group_count descending" `Quick (fun () ->
        let r = sample_relation () in
        match Table_ops.group_count r "v" with
        | [ (v, n) ] ->
            check Alcotest.bool "value" true (v = Value.Int 10);
            check Alcotest.int "count" 2 n
        | other -> Alcotest.fail (Printf.sprintf "%d groups" (List.length other)));
    Alcotest.test_case "distinct_rows" `Quick (fun () ->
        let r = sample_relation () in
        let doubled = Table_ops.union r r in
        check Alcotest.int "dedup" 3
          (Relation.cardinality (Table_ops.distinct_rows doubled)));
    Alcotest.test_case "value_set" `Quick (fun () ->
        let r = sample_relation () in
        let s = Table_ops.value_set r "v" in
        check Alcotest.int "card" 1 (Vset.cardinal s));
  ]

(* ---- Vset ---- *)

let vset_tests =
  [
    Alcotest.test_case "subset and equal" `Quick (fun () ->
        let a = Vset.of_list [ Value.Int 1; Value.Int 2 ] in
        let b = Vset.of_list [ Value.Int 1; Value.Int 2; Value.Int 3 ] in
        check Alcotest.bool "a sub b" true (Vset.subset a b);
        check Alcotest.bool "b not sub a" false (Vset.subset b a);
        check Alcotest.bool "not equal" false (Vset.equal a b);
        check Alcotest.bool "self equal" true (Vset.equal a a));
    Alcotest.test_case "inter_count" `Quick (fun () ->
        let a = Vset.of_list [ Value.Int 1; Value.Int 2 ] in
        let b = Vset.of_list [ Value.Int 2; Value.Int 3 ] in
        check Alcotest.int "inter" 1 (Vset.inter_count a b));
    Alcotest.test_case "of_column skips nulls" `Quick (fun () ->
        let s = Vset.of_column [| Value.Null; Value.Int 1; Value.Int 1 |] in
        check Alcotest.int "card" 1 (Vset.cardinal s));
  ]

(* ---- Csv ---- *)

let csv_tests =
  [
    Alcotest.test_case "parse simple" `Quick (fun () ->
        check Alcotest.(list string) "fields" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c"));
    Alcotest.test_case "parse quoted" `Quick (fun () ->
        check Alcotest.(list string) "fields" [ "a,b"; "c\"d" ]
          (Csv.parse_line "\"a,b\",\"c\"\"d\""));
    Alcotest.test_case "empty fields" `Quick (fun () ->
        check Alcotest.(list string) "fields" [ ""; ""; "" ] (Csv.parse_line ",,"));
    Alcotest.test_case "render escapes" `Quick (fun () ->
        check Alcotest.string "line" "\"a,b\",plain" (Csv.render_line [ "a,b"; "plain" ]));
    Alcotest.test_case "relation roundtrip" `Quick (fun () ->
        let r = sample_relation () in
        let doc = Csv.write_relation r in
        let r2 =
          Csv.relation_of_records ~name:"t" ~header:true (Csv.read_string doc)
        in
        check Alcotest.int "rows" (Relation.cardinality r) (Relation.cardinality r2);
        check Alcotest.(list string) "schema"
          (Schema.names (Relation.schema r))
          (Schema.names (Relation.schema r2)));
    Alcotest.test_case "ragged raises" `Quick (fun () ->
        Alcotest.check_raises "ragged"
          (Invalid_argument "Csv.relation_of_records: ragged row in t") (fun () ->
            ignore
              (Csv.relation_of_records ~name:"t" ~header:true
                 [ [ "a"; "b" ]; [ "1" ] ])));
    Alcotest.test_case "crlf stripped" `Quick (fun () ->
        match Csv.read_string "a,b\r\n1,2\r\n" with
        | [ h; r ] ->
            check Alcotest.(list string) "header" [ "a"; "b" ] h;
            check Alcotest.(list string) "row" [ "1"; "2" ] r
        | other -> Alcotest.fail (Printf.sprintf "%d records" (List.length other)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"csv field roundtrip" ~count:200
         QCheck.(list (string_of_size (QCheck.Gen.int_range 0 10)))
         (fun fields ->
           QCheck.assume
             (List.for_all
                (fun f -> not (String.contains f '\n' || String.contains f '\r'))
                fields);
           QCheck.assume (fields <> []);
           Csv.parse_line (Csv.render_line fields) = fields));
    Alcotest.test_case "quoted field spans lines" `Quick (fun () ->
        check
          Alcotest.(list (list string))
          "records"
          [ [ "a"; "line one\nline two" ]; [ "b"; "plain" ] ]
          (Csv.read_string "a,\"line one\nline two\"\nb,plain\n"));
    Alcotest.test_case "quoted field keeps crlf" `Quick (fun () ->
        (* CR is stripped only at an unquoted record boundary *)
        check
          Alcotest.(list (list string))
          "records"
          [ [ "x\r\ny"; "z" ] ]
          (Csv.read_string "\"x\r\ny\",z\r\n"));
    Alcotest.test_case "quoted empty field is not a blank line" `Quick (fun () ->
        check
          Alcotest.(list (list string))
          "records"
          [ [ "" ]; [ "a" ] ]
          (Csv.read_string "\"\"\na\n"));
    Alcotest.test_case "render/read_string embedded specials" `Quick (fun () ->
        let records =
          [ [ "newline\nin field"; "comma,in field" ];
            [ "quote\"in field"; "crlf\r\nin field" ] ]
        in
        let doc =
          String.concat "\n" (List.map Csv.render_line records) ^ "\n"
        in
        check Alcotest.(list (list string)) "records" records
          (Csv.read_string doc));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"csv record roundtrip (multi-line fields)"
         ~count:200
         QCheck.(
           list_of_size (Gen.int_range 1 5)
             (list_of_size (Gen.int_range 1 4)
                (string_of_size (Gen.int_range 0 10))))
         (fun records ->
           (* a record whose rendering is all-whitespace reads back as a
              skipped blank line unless quoted; exclude that shape *)
           QCheck.assume
             (List.for_all
                (fun fields ->
                  String.trim (Csv.render_line fields) <> "")
                records);
           let doc =
             String.concat "\n" (List.map Csv.render_line records) ^ "\n"
           in
           Csv.read_string doc = records));
  ]

let tests =
  [
    ("relational.vec", vec_tests);
    ("relational.value", value_tests);
    ("relational.schema", schema_tests);
    ("relational.relation", relation_tests);
    ("relational.catalog", catalog_tests);
    ("relational.col_stats", col_stats_tests);
    ("relational.table_ops", table_ops_tests);
    ("relational.vset", vset_tests);
    ("relational.csv", csv_tests);
  ]
