open Aladin_relational
open Aladin_discovery

let check = Alcotest.check

(* a miniature life-science source: entry (primary), seq (1:1),
   comment (1:N), kw dictionary + bridge *)
let mini_source () =
  let cat = Catalog.create ~name:"mini" in
  let entry =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "description" ])
  in
  List.iteri
    (fun i (acc, d) ->
      Relation.insert entry [| Value.Int (i + 1); Value.text acc; Value.text d |])
    (* description lengths vary > 20 % so accession stays the key *)
    [ ("AB001", "first entry about kinases");
      ("AB002", "second one");
      ("AB003", "the third entry is about transport and much longer") ];
  let seq =
    Catalog.create_relation cat ~name:"seqdata"
      (Schema.of_names [ "entry_id"; "seq_text" ])
  in
  List.iteri
    (fun i s -> Relation.insert seq [| Value.Int (i + 1); Value.text s |])
    [ "ACGTACGTACGTACGTAAAA"; "CCGTACGTACGTACGTAAAA"; "TTTTGGGGCCCCAAAATTTT" ];
  let comment =
    Catalog.create_relation cat ~name:"comment"
      (Schema.of_names [ "comment_id"; "entry_id"; "comment_text" ])
  in
  List.iteri
    (fun i (eid, text) ->
      Relation.insert comment [| Value.Int (i + 1); Value.Int eid; Value.text text |])
    [ (1, "a note about the first one"); (1, "another note"); (2, "note two") ];
  let bridge =
    Catalog.create_relation cat ~name:"entry_kw"
      (Schema.of_names [ "entry_id"; "kw_id" ])
  in
  List.iter
    (fun (e, k) -> Relation.insert bridge [| Value.Int e; Value.Int k |])
    [ (1, 1); (2, 1); (2, 2) ];
  let kw =
    Catalog.create_relation cat ~name:"kw" (Schema.of_names [ "kw_id"; "kw_name" ])
  in
  List.iteri
    (fun i n -> Relation.insert kw [| Value.Int (i + 1); Value.text n |])
    [ "binding"; "repair" ];
  cat

let profile_tests =
  [
    Alcotest.test_case "stats lookup" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let cs = Profile.stats p ~relation:"entry" ~attribute:"accession" in
        check Alcotest.int "rows" 3 cs.rows;
        check Alcotest.bool "unique" true cs.all_unique);
    Alcotest.test_case "unknown raises" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Profile.stats p ~relation:"entry" ~attribute:"zz")));
    Alcotest.test_case "values cached set" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let v1 = Profile.values p ~relation:"entry" ~attribute:"entry_id" in
        check Alcotest.int "card" 3 (Vset.cardinal v1));
    Alcotest.test_case "unique_attributes" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let u = Profile.unique_attributes p in
        check Alcotest.bool "accession in" true (List.mem ("entry", "accession") u);
        check Alcotest.bool "comment fk not in" false
          (List.mem ("comment", "entry_id") u));
    Alcotest.test_case "declared unique wins" `Quick (fun () ->
        let cat = Catalog.create ~name:"d" in
        let t = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "a" ]) in
        Relation.insert t [| Value.Int 1 |];
        Relation.insert t [| Value.Int 1 |];
        Catalog.declare cat (Constraint_def.Unique { relation = "t"; attribute = "a" });
        let p = Profile.compute cat in
        check Alcotest.bool "declared" true (Profile.is_unique p ~relation:"t" ~attribute:"a"));
  ]

let accession_tests =
  let profile_of rows =
    let cat = Catalog.create ~name:"x" in
    let t = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "a" ]) in
    List.iter (fun v -> Relation.insert t [| Value.text v |]) rows;
    Profile.compute cat
  in
  let candidate_of p =
    Accession.candidates p
    |> List.map (fun (c : Accession.candidate) -> (c.relation, c.attribute))
  in
  [
    Alcotest.test_case "accepts accession shape" `Quick (fun () ->
        let p = profile_of [ "AB001"; "AB002"; "AB003" ] in
        check Alcotest.(list (pair string string)) "found" [ ("t", "a") ] (candidate_of p));
    Alcotest.test_case "rejects short values" `Quick (fun () ->
        let p = profile_of [ "A1"; "B2"; "C3" ] in
        check Alcotest.int "none" 0 (List.length (candidate_of p)));
    Alcotest.test_case "rejects numeric-only" `Quick (fun () ->
        let cat = Catalog.create ~name:"x" in
        let t = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "a" ]) in
        List.iter (fun v -> Relation.insert t [| Value.Int v |]) [ 1001; 1002; 1003 ];
        check Alcotest.int "none" 0
          (List.length (Accession.candidates (Profile.compute cat))));
    Alcotest.test_case "rejects length spread > 20%" `Quick (fun () ->
        let p = profile_of [ "AB1"; "ABCDEFGH02"; "ABCD3" ] in
        check Alcotest.int "none" 0 (List.length (candidate_of p)));
    Alcotest.test_case "rejects non-unique" `Quick (fun () ->
        let p = profile_of [ "AB001"; "AB001"; "AB002" ] in
        check Alcotest.int "none" 0 (List.length (candidate_of p)));
    Alcotest.test_case "rejects nulls" `Quick (fun () ->
        let cat = Catalog.create ~name:"x" in
        let t = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "a" ]) in
        Relation.insert t [| Value.text "AB001" |];
        Relation.insert t [| Value.Null |];
        check Alcotest.int "none" 0
          (List.length (Accession.candidates (Profile.compute cat))));
    Alcotest.test_case "longest average wins within relation" `Quick (fun () ->
        let cat = Catalog.create ~name:"x" in
        let t = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "a"; "b" ]) in
        List.iter
          (fun (a, b) -> Relation.insert t [| Value.text a; Value.text b |])
          [ ("AB01", "LONGACC001"); ("AB02", "LONGACC002"); ("AB03", "LONGACC003") ];
        match Accession.candidates (Profile.compute cat) with
        | [ c ] -> check Alcotest.string "b wins" "b" c.attribute
        | cs -> Alcotest.fail (Printf.sprintf "%d candidates" (List.length cs)));
    Alcotest.test_case "params ablation: min_length" `Quick (fun () ->
        let p = profile_of [ "A1X"; "B2Y"; "C3Z" ] in
        let params = { Accession.default_params with min_length = 3 } in
        check Alcotest.int "found with 3" 1
          (List.length (Accession.candidates ~params p)));
    (* regression: real-world accession shapes must satisfy the per-value
       letter test (min_alpha_frac = 1.0) *)
    Alcotest.test_case "accepts UniProt-shaped accessions" `Quick (fun () ->
        let p = profile_of [ "P12345"; "Q67890"; "O43210" ] in
        check Alcotest.(list (pair string string)) "found" [ ("t", "a") ]
          (candidate_of p));
    Alcotest.test_case "accepts GenBank-shaped accessions" `Quick (fun () ->
        let p = profile_of [ "NM_000546"; "NM_000547"; "NM_000548" ] in
        check Alcotest.(list (pair string string)) "found" [ ("t", "a") ]
          (candidate_of p));
    Alcotest.test_case "accepts GO-term-shaped accessions" `Quick (fun () ->
        let p = profile_of [ "GO:0008150"; "GO:0003674"; "GO:0005575" ] in
        check Alcotest.(list (pair string string)) "found" [ ("t", "a") ]
          (candidate_of p));
    Alcotest.test_case "rejects digits-plus-separator (documented deviation)"
      `Quick (fun () ->
        (* the paper's rule ("at least one non-digit") would accept these;
           our stricter letter test treats them as surrogate-key-shaped —
           see the min_alpha_frac doc in accession.mli *)
        let p = profile_of [ "12:34567"; "12:34568"; "12:34569" ] in
        check Alcotest.int "none" 0 (List.length (candidate_of p)));
    Alcotest.test_case "min_alpha_frac = 0 recovers the paper's rule" `Quick
      (fun () ->
        let p = profile_of [ "12:34567"; "12:34568"; "12:34569" ] in
        let params = { Accession.default_params with min_alpha_frac = 0.0 } in
        check Alcotest.int "found" 1
          (List.length (Accession.candidates ~params p)));
  ]

let inclusion_tests =
  [
    Alcotest.test_case "finds fk by subset" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let fks = Inclusion.infer p in
        check Alcotest.bool "comment fk" true
          (List.exists
             (fun (fk : Inclusion.fk) ->
               fk.src_relation = "comment" && fk.src_attribute = "entry_id"
               && fk.dst_relation = "entry")
             fks));
    Alcotest.test_case "1:1 for sequence table" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let fks = Inclusion.infer p in
        match
          List.find_opt
            (fun (fk : Inclusion.fk) -> fk.src_relation = "seqdata")
            fks
        with
        | Some fk ->
            check Alcotest.bool "one-to-one" true (fk.cardinality = Inclusion.One_to_one)
        | None -> Alcotest.fail "seqdata fk missing");
    Alcotest.test_case "bridge has two fks" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        let fks = Inclusion.infer p in
        let from_bridge =
          List.filter (fun (fk : Inclusion.fk) -> fk.src_relation = "entry_kw") fks
        in
        check Alcotest.int "two" 2 (List.length from_bridge));
    Alcotest.test_case "declared fks preserved" `Quick (fun () ->
        let cat = mini_source () in
        Catalog.declare cat
          (Constraint_def.Foreign_key
             { src_relation = "comment"; src_attribute = "entry_id";
               dst_relation = "entry"; dst_attribute = "entry_id" });
        let p = Profile.compute cat in
        let fks = Inclusion.infer p in
        check Alcotest.bool "declared origin" true
          (List.exists
             (fun (fk : Inclusion.fk) ->
               fk.origin = `Declared && fk.src_relation = "comment")
             fks));
    Alcotest.test_case "name_affinity" `Quick (fun () ->
        check Alcotest.bool "taxon_id vs taxon" true
          (Inclusion.name_affinity ~src_attribute:"taxon_id" ~dst_relation:"taxon"
             ~dst_attribute:"taxon_id" > 0.0);
        check (Alcotest.float 0.001) "unrelated" 0.0
          (Inclusion.name_affinity ~src_attribute:"taxon_id"
             ~dst_relation:"bioentry" ~dst_attribute:"bioentry_id"));
    Alcotest.test_case "pk-pk guard blocks surrogate confusion" `Quick (fun () ->
        (* two dictionary tables whose integer keys are both 1..3 *)
        let cat = Catalog.create ~name:"x" in
        let a = Catalog.create_relation cat ~name:"colors" (Schema.of_names [ "colors_id"; "cname" ]) in
        let b = Catalog.create_relation cat ~name:"shapes" (Schema.of_names [ "shapes_id"; "sname" ]) in
        List.iteri
          (fun i n -> Relation.insert a [| Value.Int (i + 1); Value.text n |])
          [ "redx"; "bluex"; "greenx" ];
        List.iteri
          (fun i n -> Relation.insert b [| Value.Int (i + 1); Value.text n |])
          [ "circlex"; "squarex"; "trianglex" ];
        let fks = Inclusion.infer (Profile.compute cat) in
        check Alcotest.int "no spurious fk" 0 (List.length fks));
    Alcotest.test_case "guard can be disabled" `Quick (fun () ->
        let cat = Catalog.create ~name:"x" in
        let a = Catalog.create_relation cat ~name:"colors" (Schema.of_names [ "colors_id" ]) in
        let b = Catalog.create_relation cat ~name:"shapes" (Schema.of_names [ "shapes_id" ]) in
        for i = 1 to 3 do
          Relation.insert a [| Value.Int i |];
          Relation.insert b [| Value.Int i |]
        done;
        let params =
          { Inclusion.default_params with require_name_affinity_for_pk_pk = false }
        in
        check Alcotest.bool "spurious appears" true
          (Inclusion.infer ~params (Profile.compute cat) <> []));
    Alcotest.test_case "type classes never mix" `Quick (fun () ->
        let cat = Catalog.create ~name:"x" in
        let a = Catalog.create_relation cat ~name:"t" (Schema.of_names [ "num"; "txt" ]) in
        List.iter
          (fun (n, s) -> Relation.insert a [| Value.Int n; Value.text s |])
          [ (1, "AAA1"); (2, "BBB2"); (3, "CCC3") ];
        let fks = Inclusion.infer (Profile.compute cat) in
        check Alcotest.bool "no int->text fk" true
          (not
             (List.exists
                (fun (fk : Inclusion.fk) ->
                  fk.src_attribute = "num" && fk.dst_attribute = "txt")
                fks)));
    Alcotest.test_case "candidate_pairs_considered positive" `Quick (fun () ->
        let p = Profile.compute (mini_source ()) in
        check Alcotest.bool "pairs > 0" true (Inclusion.candidate_pairs_considered p > 0));
  ]

let graph_of_mini () =
  let cat = mini_source () in
  let p = Profile.compute cat in
  let fks = Inclusion.infer p in
  Fk_graph.build ~relations:(Catalog.relation_names cat) fks

let fk_graph_tests =
  [
    Alcotest.test_case "in_degree of primary" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.bool "entry highest" true
          (Fk_graph.in_degree g "entry" >= 3));
    Alcotest.test_case "unknown relation zero" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.int "zero" 0 (Fk_graph.in_degree g "nope"));
    Alcotest.test_case "neighbors undirected" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.bool "entry<->comment both" true
          (List.mem_assoc "comment" (Fk_graph.neighbors g "entry")
          && List.mem_assoc "entry" (Fk_graph.neighbors g "comment")));
    Alcotest.test_case "paths_from reach all" `Quick (fun () ->
        let g = graph_of_mini () in
        let paths = Fk_graph.paths_from g ~src:"entry" ~max_len:4 in
        check Alcotest.int "four others" 4 (List.length paths));
    Alcotest.test_case "shortest path first" `Quick (fun () ->
        let g = graph_of_mini () in
        let paths = Fk_graph.paths_from g ~src:"entry" ~max_len:5 in
        match List.assoc_opt "kw" paths with
        | Some (first :: _) -> check Alcotest.int "2 hops via bridge" 2 (List.length first)
        | Some [] | None -> Alcotest.fail "kw unreachable");
    Alcotest.test_case "connected_components" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.int "one component" 1
          (List.length (Fk_graph.connected_components g)));
    Alcotest.test_case "average in-degree" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.bool "positive" true (Fk_graph.average_in_degree g > 0.0));
  ]

let primary_tests =
  [
    Alcotest.test_case "choose picks entry" `Quick (fun () ->
        let cat = mini_source () in
        let p = Profile.compute cat in
        let cands = Accession.candidates p in
        let g = graph_of_mini () in
        match Primary.choose g cands with
        | Some s -> check Alcotest.string "entry" "entry" s.relation
        | None -> Alcotest.fail "no primary");
    Alcotest.test_case "no candidates no primary" `Quick (fun () ->
        let g = graph_of_mini () in
        check Alcotest.bool "none" true (Primary.choose g [] = None));
    Alcotest.test_case "choose_multi falls back to best" `Quick (fun () ->
        let cat = mini_source () in
        let p = Profile.compute cat in
        let cands = Accession.candidates p in
        let g = graph_of_mini () in
        check Alcotest.bool "nonempty" true (Primary.choose_multi ~margin:100.0 g cands <> []));
  ]

let secondary_tests =
  [
    Alcotest.test_case "all relations reached" `Quick (fun () ->
        let g = graph_of_mini () in
        let s = Secondary.discover g ~primary:"entry" in
        check Alcotest.int "entries" 4 (List.length s.entries);
        check Alcotest.int "orphans" 0 (List.length s.orphans));
    Alcotest.test_case "depth ordering" `Quick (fun () ->
        let g = graph_of_mini () in
        let s = Secondary.discover g ~primary:"entry" in
        let depths = List.map (fun (e : Secondary.entry) -> e.depth) s.entries in
        check Alcotest.bool "sorted" true (List.sort Int.compare depths = depths));
    Alcotest.test_case "bridge classified" `Quick (fun () ->
        let g = graph_of_mini () in
        let s = Secondary.discover g ~primary:"entry" in
        match
          List.find_opt (fun (e : Secondary.entry) -> e.relation = "entry_kw") s.entries
        with
        | Some e -> check Alcotest.bool "bridge" true (e.kind = `Bridge)
        | None -> Alcotest.fail "bridge missing");
    Alcotest.test_case "orphan detection" `Quick (fun () ->
        let cat = mini_source () in
        let _ = Catalog.create_relation cat ~name:"island" (Schema.of_names [ "z" ]) in
        let p = Profile.compute cat in
        let fks = Inclusion.infer p in
        let g = Fk_graph.build ~relations:(Catalog.relation_names cat) fks in
        let s = Secondary.discover g ~primary:"entry" in
        check Alcotest.(list string) "island orphan" [ "island" ] s.orphans);
  ]

let source_profile_tests =
  [
    Alcotest.test_case "analyze end-to-end" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        check Alcotest.(option string) "primary" (Some "entry")
          (Source_profile.primary_relation sp);
        check Alcotest.bool "secondary present" true (sp.secondary <> None));
    Alcotest.test_case "biosql case study: bioentry is primary" `Quick (fun () ->
        (* the paper's §5 example, through the real flat-file parser *)
        let doc = T_formats.sample_swissprot in
        let cat = Aladin_formats.Swissprot.parse doc in
        let sp = Source_profile.analyze cat in
        check Alcotest.(option (pair string string)) "primary accession"
          (Some ("bioentry", "accession"))
          (Source_profile.primary_accession sp));
    Alcotest.test_case "with_primary override" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        let sp2 = Source_profile.with_primary sp ~relation:"kw" in
        check Alcotest.(option string) "kw" (Some "kw")
          (Source_profile.primary_relation sp2));
    Alcotest.test_case "with_primary unknown raises" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        match Source_profile.with_primary sp ~relation:"nope" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
  ]

let multi_primary_tests =
  [
    Alcotest.test_case "dual-primary source: both found" `Quick (fun () ->
        let u = Aladin_datagen.Universe.generate Aladin_datagen.Universe.default_params in
        let cat, expected =
          Aladin_datagen.Source_gen.build_dual_primary u ~name:"ensembl"
        in
        let sp = Source_profile.analyze cat in
        let multi =
          Primary.choose_multi sp.graph sp.accession_candidates
          |> List.map (fun (s : Primary.scored) -> s.relation)
          |> List.sort String.compare
        in
        check Alcotest.(list string) "clone+gene"
          (List.sort String.compare (List.map fst expected))
          multi);
    Alcotest.test_case "single choose still deterministic" `Quick (fun () ->
        let u = Aladin_datagen.Universe.generate Aladin_datagen.Universe.default_params in
        let cat, _ = Aladin_datagen.Source_gen.build_dual_primary u ~name:"ensembl" in
        let sp = Source_profile.analyze cat in
        check Alcotest.(option string) "one of them" (Some "clone")
          (Source_profile.primary_relation sp));
    Alcotest.test_case "huge margin falls back to best" `Quick (fun () ->
        let u = Aladin_datagen.Universe.generate Aladin_datagen.Universe.default_params in
        let cat, _ = Aladin_datagen.Source_gen.build_dual_primary u ~name:"ensembl" in
        let sp = Source_profile.analyze cat in
        check Alcotest.int "one" 1
          (List.length (Primary.choose_multi ~margin:100.0 sp.graph sp.accession_candidates)));
  ]

let approx_ind_tests =
  [
    Alcotest.test_case "dangling FK breaks exact, approximate recovers" `Quick
      (fun () ->
        let cat = Catalog.create ~name:"dirty" in
        let parent =
          Catalog.create_relation cat ~name:"parent"
            (Schema.of_names [ "parent_id"; "label" ])
        in
        for i = 1 to 20 do
          Relation.insert parent
            [| Value.Int i; Value.text (Printf.sprintf "LBL%02d" i) |]
        done;
        let child =
          Catalog.create_relation cat ~name:"child"
            (Schema.of_names [ "child_id"; "parent_id" ])
        in
        for i = 1 to 20 do
          (* one dangling reference *)
          let v = if i = 7 then 999 else i in
          Relation.insert child [| Value.Int i; Value.Int v |]
        done;
        let has_fk params =
          Inclusion.infer ~params (Profile.compute cat)
          |> List.exists (fun (fk : Inclusion.fk) ->
                 fk.src_relation = "child" && fk.dst_relation = "parent")
        in
        check Alcotest.bool "exact misses" false (has_fk Inclusion.default_params);
        check Alcotest.bool "approximate finds" true
          (has_fk { Inclusion.default_params with min_containment = 0.9 }));
  ]

let tests =
  [
    ("discovery.profile", profile_tests);
    ("discovery.multi_primary", multi_primary_tests);
    ("discovery.approx_ind", approx_ind_tests);
    ("discovery.accession", accession_tests);
    ("discovery.inclusion", inclusion_tests);
    ("discovery.fk_graph", fk_graph_tests);
    ("discovery.primary", primary_tests);
    ("discovery.secondary", secondary_tests);
    ("discovery.source_profile", source_profile_tests);
  ]

let profile_report_tests =
  [
    Alcotest.test_case "classes assigned" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        check Alcotest.string "accession" "accession"
          (Profile_report.class_name
             (Profile_report.classify sp ~relation:"entry" ~attribute:"accession"));
        check Alcotest.string "fk" "foreign-key"
          (Profile_report.class_name
             (Profile_report.classify sp ~relation:"comment" ~attribute:"entry_id"));
        check Alcotest.string "sequence" "sequence"
          (Profile_report.class_name
             (Profile_report.classify sp ~relation:"seqdata" ~attribute:"seq_text")));
    Alcotest.test_case "render mentions primary and relations" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        let r = Profile_report.render sp in
        let contains needle = Aladin_text.Strdist.contains ~needle r in
        check Alcotest.bool "primary line" true (contains "primary relation: entry");
        check Alcotest.bool "kw table" true (contains "kw (2 rows)");
        check Alcotest.bool "bridge" true (contains "bridge"));
    Alcotest.test_case "unknown attribute raises" `Quick (fun () ->
        let sp = Source_profile.analyze (mini_source ()) in
        Alcotest.check_raises "Not_found" Not_found (fun () ->
            ignore (Profile_report.classify sp ~relation:"entry" ~attribute:"zz")));
  ]

let tests = tests @ [ ("discovery.profile_report", profile_report_tests) ]
