open Aladin_obs

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then
    Alcotest.fail (Printf.sprintf "%s: %S not found in %s" what needle hay)

let clock_tests =
  [
    Alcotest.test_case "now is non-decreasing" `Quick (fun () ->
        let a = Clock.now () in
        let b = Clock.now () in
        let c = Clock.now () in
        check Alcotest.bool "a<=b" true (a <= b);
        check Alcotest.bool "b<=c" true (b <= c));
    Alcotest.test_case "timed returns value and >= 0 duration" `Quick (fun () ->
        let v, secs = Clock.timed (fun () -> 41 + 1) in
        check Alcotest.int "value" 42 v;
        check Alcotest.bool "secs >= 0" true (secs >= 0.0));
  ]

let span_tests =
  [
    Alcotest.test_case "nesting builds a tree" `Quick (fun () ->
        let tr = Trace.create ~name:"t" () in
        Trace.with_span tr "outer" (fun () ->
            Trace.with_span tr "inner-1" (fun () -> ());
            Trace.with_span tr "inner-2" (fun () -> ()));
        Trace.with_span tr "second-root" (fun () -> ());
        match Trace.roots tr with
        | [ outer; second ] ->
            check Alcotest.string "outer" "outer" (Span.name outer);
            check Alcotest.string "second" "second-root" (Span.name second);
            check
              Alcotest.(list string)
              "children"
              [ "inner-1"; "inner-2" ]
              (List.map Span.name (Span.children outer));
            check Alcotest.bool "closed" false (Span.is_open outer);
            List.iter
              (fun sp ->
                check Alcotest.bool
                  (Span.name sp ^ " duration >= 0")
                  true
                  (Span.duration sp >= 0.0))
              (outer :: second :: Span.children outer)
        | roots ->
            Alcotest.fail (Printf.sprintf "%d roots" (List.length roots)));
    Alcotest.test_case "raising body still closes its span" `Quick (fun () ->
        let tr = Trace.create () in
        (try
           Trace.with_span tr "boom" (fun () -> failwith "no")
         with Failure _ -> ());
        match Trace.roots tr with
        | [ sp ] ->
            check Alcotest.string "name" "boom" (Span.name sp);
            check Alcotest.bool "closed" false (Span.is_open sp)
        | roots ->
            Alcotest.fail (Printf.sprintf "%d roots" (List.length roots)));
    Alcotest.test_case "attrs recorded on the innermost open span" `Quick
      (fun () ->
        let tr = Trace.create () in
        Trace.with_span tr "outer" (fun () ->
            Trace.with_span tr "inner" (fun () -> Trace.add_attr tr "k" "v"));
        match Trace.roots tr with
        | [ outer ] ->
            let inner = List.hd (Span.children outer) in
            check
              Alcotest.(list (pair string string))
              "attrs"
              [ ("k", "v") ]
              (Span.attrs inner)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "trace duration spans the roots" `Quick (fun () ->
        let tr = Trace.create () in
        check (Alcotest.float 0.0) "empty" 0.0 (Trace.duration tr);
        Trace.with_span tr "a" (fun () -> ());
        check Alcotest.bool ">= 0" true (Trace.duration tr >= 0.0));
  ]

let metric_tests =
  [
    Alcotest.test_case "counters accumulate" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.incr tr "hits";
        Trace.incr tr ~by:4 "hits";
        Trace.incr tr "misses";
        check Alcotest.int "hits" 5 (Trace.counter_value tr "hits");
        check Alcotest.int "unknown" 0 (Trace.counter_value tr "nope");
        check
          Alcotest.(list (pair string int))
          "sorted"
          [ ("hits", 5); ("misses", 1) ]
          (Trace.counters tr));
    Alcotest.test_case "histogram accumulates" `Quick (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.observe h) [ 0.002; 0.004; 0.5; 1000.0 ];
        check Alcotest.int "count" 4 (Histogram.count h);
        check (Alcotest.float 1e-9) "sum" 1000.506 (Histogram.sum h);
        check (Alcotest.float 1e-9) "min" 0.002 (Histogram.min_value h);
        check (Alcotest.float 1e-9) "max" 1000.0 (Histogram.max_value h);
        let buckets = Histogram.buckets h in
        check Alcotest.int "bucket counts sum to count" 4
          (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
        (* 1000s exceeds the last bound: it must land in the overflow slot *)
        let bound, overflow = List.nth buckets (List.length buckets - 1) in
        check Alcotest.bool "last bound is infinity" true (bound = infinity);
        check Alcotest.int "overflow" 1 overflow);
    Alcotest.test_case "observe through the trace" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.observe tr "lat" 0.25;
        Trace.observe tr "lat" 0.75;
        match Trace.histograms tr with
        | [ ("lat", h) ] ->
            check Alcotest.int "count" 2 (Histogram.count h);
            check (Alcotest.float 1e-9) "mean" 0.5 (Histogram.mean h)
        | hs -> Alcotest.fail (Printf.sprintf "%d histograms" (List.length hs)));
    Alcotest.test_case "ambient is a no-op without a trace" `Quick (fun () ->
        check Alcotest.bool "none" true (Trace.ambient () = None);
        Trace.ambient_incr "x";
        Trace.ambient_observe "y" 1.0;
        let v = Trace.ambient_span "z" (fun () -> 7) in
        check Alcotest.int "body ran" 7 v);
    Alcotest.test_case "ambient records into the installed trace" `Quick
      (fun () ->
        let tr = Trace.create () in
        Trace.with_ambient tr (fun () ->
            Trace.ambient_span "work" (fun () -> Trace.ambient_incr "n"));
        check Alcotest.bool "uninstalled" true (Trace.ambient () = None);
        check Alcotest.int "n" 1 (Trace.counter_value tr "n");
        check
          Alcotest.(list string)
          "span"
          [ "work" ]
          (List.map Span.name (Trace.roots tr)));
  ]

let json_tests =
  [
    Alcotest.test_case "export shape" `Quick (fun () ->
        let tr = Trace.create ~name:"demo" () in
        Trace.with_span tr "step" ~attrs:[ ("source", "s1") ] (fun () ->
            Trace.with_span tr "child" (fun () -> ());
            Trace.incr tr "pairs";
            Trace.observe tr "lat" 0.01);
        let j = Sink.to_json tr in
        List.iter
          (fun needle -> check_contains "json" needle j)
          [ "\"trace\":\"demo\""; "\"spans\""; "\"name\":\"step\"";
            "\"name\":\"child\""; "\"attrs\""; "\"source\":\"s1\"";
            "\"counters\""; "\"pairs\":1"; "\"histograms\""; "\"lat\"";
            "\"count\":1"; "\"buckets\""; "\"le_s\":null";
            "\"duration_s\"" ]);
    Alcotest.test_case "json escapes control characters" `Quick (fun () ->
        let tr = Trace.create ~name:"quote\"and\nnewline" () in
        let j = Sink.to_json tr in
        check_contains "escaped" "quote\\\"and\\nnewline" j);
    Alcotest.test_case "pretty mentions spans and counters" `Quick (fun () ->
        let tr = Trace.create ~name:"demo" () in
        Trace.with_span tr "step" (fun () -> Trace.incr tr ~by:3 "pairs");
        let p = Sink.pretty tr in
        check_contains "pretty" "step" p;
        check_contains "pretty" "pairs" p);
  ]

(* the full pipeline, traced: one root span per step, child spans under
   link discovery, counters from the discovery layers *)
let pipeline_tests =
  let corpus =
    lazy
      (Aladin_datagen.Corpus.generate
         {
           Aladin_datagen.Corpus.default_params with
           universe =
             { Aladin_datagen.Universe.default_params with n_proteins = 12;
               n_genes = 6; n_structures = 4; n_diseases = 3; n_terms = 6;
               n_families = 2 };
         })
  in
  let traced =
    lazy
      (let w = Aladin.Warehouse.create () in
       match (Lazy.force corpus).catalogs with
       | first :: _ ->
           let report = Aladin.Warehouse.add_source w first in
           (w, report)
       | [] -> Alcotest.fail "no catalogs")
  in
  [
    Alcotest.test_case "one root span per pipeline step" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        match Aladin.Warehouse.last_trace w with
        | None -> Alcotest.fail "no trace"
        | Some tr ->
            check
              Alcotest.(list string)
              "steps"
              [ "import"; "primary discovery"; "secondary discovery";
                "link discovery"; "duplicate detection" ]
              (List.map Span.name (Trace.roots tr));
            List.iter
              (fun sp ->
                check Alcotest.bool
                  (Span.name sp ^ " >= 0")
                  true
                  (Span.duration sp >= 0.0))
              (Trace.roots tr));
    Alcotest.test_case "run report mirrors the spans" `Quick (fun () ->
        let _, report = Lazy.force traced in
        check Alcotest.int "five" 5 (List.length report.steps);
        List.iter
          (fun (s : Aladin.Warehouse.Run_report.step_report) ->
            check Alcotest.bool (s.step ^ " >= 0") true (s.seconds >= 0.0);
            check Alcotest.bool (s.step ^ " clean") true
              (Aladin.Warehouse.Run_report.outcome_clean s.outcome))
          report.steps);
    Alcotest.test_case "spans carry a status attribute" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        match Aladin.Warehouse.last_trace w with
        | None -> Alcotest.fail "no trace"
        | Some tr ->
            List.iter
              (fun sp ->
                check
                  Alcotest.(option string)
                  (Span.name sp ^ " status")
                  (Some "ok")
                  (List.assoc_opt "status" (Span.attrs sp)))
              (List.filter
                 (fun sp -> Span.name sp <> "import")
                 (Trace.roots tr)));
    Alcotest.test_case "link discovery has child pass spans" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        match Aladin.Warehouse.last_trace w with
        | None -> Alcotest.fail "no trace"
        | Some tr ->
            let link =
              List.find (fun sp -> Span.name sp = "link discovery")
                (Trace.roots tr)
            in
            let names = List.map Span.name (Span.children link) in
            check Alcotest.bool "has xref pass" true
              (List.mem "xref pass" names);
            check Alcotest.bool "has a second pass" true
              (List.length names >= 2));
    Alcotest.test_case "primary discovery has child spans" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        match Aladin.Warehouse.last_trace w with
        | None -> Alcotest.fail "no trace"
        | Some tr ->
            let primary =
              List.find (fun sp -> Span.name sp = "primary discovery")
                (Trace.roots tr)
            in
            check
              Alcotest.(list string)
              "children"
              [ "profile"; "accession candidates"; "fk inference";
                "primary choice" ]
              (List.map Span.name (Span.children primary)));
    Alcotest.test_case "discovery counters recorded" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        match Aladin.Warehouse.last_trace w with
        | None -> Alcotest.fail "no trace"
        | Some tr ->
            check Alcotest.bool "fk pairs considered" true
              (Trace.counter_value tr "fk.pairs_considered" > 0);
            check Alcotest.bool "pruned <= considered" true
              (Trace.counter_value tr "fk.pairs_pruned"
              <= Trace.counter_value tr "fk.pairs_considered"));
    Alcotest.test_case "trace persisted as provenance" `Quick (fun () ->
        let w, _ = Lazy.force traced in
        let repo = Aladin.Warehouse.repository w in
        match Aladin_metadata.Repository.provenance repo with
        | None -> Alcotest.fail "no provenance"
        | Some doc ->
            check_contains "provenance json" "\"spans\"" doc;
            check_contains "provenance json" "link discovery" doc;
            (* survives a save/load cycle *)
            let reloaded =
              Aladin_metadata.Repository.load
                (Aladin_metadata.Repository.save repo)
            in
            check
              Alcotest.(option string)
              "reloaded" (Some doc)
              (Aladin_metadata.Repository.provenance reloaded));
  ]

let tests =
  [
    ("obs.clock", clock_tests);
    ("obs.span", span_tests);
    ("obs.metrics", metric_tests);
    ("obs.json", json_tests);
    ("obs.pipeline", pipeline_tests);
  ]
