(* Robustness: parsers and loaders over arbitrary input must either
   succeed or fail with their documented exception — never crash with
   anything else, never loop. *)

open Aladin_formats
open Aladin_access

let no_crash name count gen f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count gen (fun input ->
         match f input with
         | _ -> true
         | exception Xml.Parse_error _ -> true
         | exception Sql_parser.Parse_error _ -> true
         | exception Sql_lexer.Lex_error _ -> true
         | exception Invalid_argument _ -> true))

(* printable-ish strings with structure-relevant characters *)
let textish =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 200)
    (QCheck.Gen.oneofl
       [ 'a'; 'b'; 'Z'; '0'; '9'; ' '; '\n'; '\t'; '<'; '>'; '/'; '='; '"';
         '\''; '&'; ';'; ':'; ','; '.'; '('; ')'; '%'; '_'; '-'; '#'; '['; ']' ])

let sql_tokens =
  QCheck.make
    QCheck.Gen.(
      let word =
        oneofl
          [ "SELECT"; "FROM"; "WHERE"; "JOIN"; "ON"; "AND"; "OR"; "NOT";
            "GROUP"; "BY"; "ORDER"; "LIMIT"; "IN"; "IS"; "NULL"; "LIKE";
            "COUNT"; "("; ")"; "*"; ","; "="; "<>"; "t"; "a"; "b"; "t.a";
            "'x'"; "42"; "3.5" ]
      in
      map (String.concat " ") (list_size (int_range 0 15) word))

let fuzz_tests =
  [
    no_crash "xml parser never crashes" 500 textish (fun s -> Xml.parse s);
    no_crash "swissprot parser total" 300 textish (fun s -> Swissprot.parse s);
    no_crash "genbank parser total" 300 textish (fun s -> Genbank.parse s);
    no_crash "fasta parser total" 300 textish (fun s -> Fasta.parse s);
    no_crash "obo parser total" 300 textish (fun s -> Obo.parse s);
    no_crash "pdb parser total" 300 textish (fun s -> Pdb_flat.parse s);
    no_crash "csv reader total" 300 textish (fun s -> Aladin_relational.Csv.read_string s);
    no_crash "sniff total" 300 textish (fun s -> Import.sniff s);
    no_crash "sql parser structured fuzz" 500 sql_tokens (fun s -> Sql_parser.parse s);
    no_crash "sql lexer raw fuzz" 300 textish (fun s -> Sql_lexer.tokenize s);
    no_crash "repository load total" 300 textish (fun s ->
        Aladin_metadata.Repository.load s);
    no_crash "feedback load total" 300 textish (fun s -> Aladin.Feedback.load s);
    no_crash "dump constraints total" 300 textish (fun s -> Dump.parse_constraints s);
  ]

(* --- the result-returning import API: NO exception is acceptable --- *)

let never_raises name count gen f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count gen (fun input ->
         match f input with Ok _ | Error _ -> true))

let import_api_fuzz =
  [
    never_raises "import_string total on garbage" 500 textish (fun s ->
        Import.import_string ~name:"fuzz" s);
    never_raises "run report deserialize total" 300 textish (fun s ->
        match Aladin_resilience.Run_report.deserialize s with
        | Some r -> Ok r
        | None -> Error ());
  ]

(* --- truncation and corruption of real documents, per importer ---

   Each valid sample is cut at arbitrary byte offsets and fed through the
   result-based importer: every outcome must be an [Ok] (possibly with
   recovered record errors) or a typed [Error] — never an exception. *)

let truncated name doc =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:(name ^ " truncated never raises") ~count:120
       QCheck.(int_bound (String.length doc))
       (fun cut ->
         match Import.import_string ~name (String.sub doc 0 cut) with
         | Ok _ | Error _ -> true))

let check = Alcotest.check

module Import_error = Aladin_resilience.Import_error

let sample_csv = "id,name,organism\nP1,kinase,human\nP2,lyase,mouse\n"

let ragged_csv = "id,name,organism\nP1,kinase,human\nP2,lyase\nP3,ligase,yeast\n"

let importer_robustness =
  [
    truncated "swissprot" T_formats.sample_swissprot;
    truncated "embl" T_formats.embl_sample;
    truncated "genbank" T_formats.genbank_sample;
    truncated "fasta" ">A1 first\nACGTACGT\n>B2 second\nTTTTCCCC\n";
    truncated "obo" T_formats.obo_sample;
    truncated "pdb" T_formats.pdb_sample;
    truncated "csv" sample_csv;
    Alcotest.test_case "csv ragged row becomes record error" `Quick (fun () ->
        match Import.import_string ~name:"csv" ragged_csv with
        | Ok im ->
            check Alcotest.int "one record error" 1
              (List.length im.record_errors);
            check Alcotest.int "two rows kept" 2
              (Aladin_relational.Catalog.total_rows im.catalog)
        | Error e -> Alcotest.fail (Import_error.to_string e));
    Alcotest.test_case "unrecognized input is a typed error" `Quick (fun () ->
        match Import.import_string ~name:"junk" "\000\001\002 nothing" with
        | Error e ->
            check Alcotest.bool "unrecognized" true
              (e.kind = Import_error.Unrecognized)
        | Ok _ -> Alcotest.fail "garbage imported");
    Alcotest.test_case "empty input is a typed error" `Quick (fun () ->
        match Import.import_string ~name:"empty" "" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "empty imported");
  ]

(* structural property: render . parse = id on generated XML trees *)
let xml_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "item"; "node" ] in
  let attr_val =
    string_size ~gen:(oneofl [ 'x'; 'y'; '&'; '<'; '"'; ' ' ]) (int_range 0 6)
  in
  let text_node =
    map
      (fun s -> Xml.Text s)
      (string_size ~gen:(oneofl [ 'h'; 'i'; '&'; '>'; ' ' ]) (int_range 1 8))
  in
  let rec node depth =
    if depth = 0 then text_node
    else
      frequency
        [ (1, text_node);
          (2,
           map3
             (fun tag attrs children -> Xml.Element { tag; attrs; children })
             tag
             (list_size (int_range 0 2)
                (map2 (fun k v -> (k, v)) (oneofl [ "k1"; "k2" ]) attr_val))
             (list_size (int_range 0 3) (node (depth - 1)))) ]
  in
  map
    (fun children -> Xml.Element { tag = "root"; attrs = []; children })
    (list_size (int_range 0 4) (node 2))

(* consecutive text nodes merge on reparse, so compare text-normalized *)
let rec normalize = function
  | Xml.Text s -> Xml.Text s
  | Xml.Element { tag; attrs; children } ->
      (* merge every adjacent text run, then drop whitespace-only runs —
         matching what serialization loses *)
      let merged =
        List.fold_left
          (fun acc child ->
            match (normalize child, acc) with
            | Xml.Text t, Xml.Text prev :: rest -> Xml.Text (prev ^ t) :: rest
            | n, _ -> n :: acc)
          [] children
      in
      let kept =
        List.filter
          (function Xml.Text t -> String.trim t <> "" | Xml.Element _ -> true)
          (List.rev merged)
      in
      Xml.Element { tag; attrs; children = kept }

let roundtrip_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"xml render/parse roundtrip" ~count:200
         (QCheck.make xml_gen)
         (fun tree ->
           normalize (Xml.parse (Xml.render tree)) = normalize tree));
  ]

(* --- the storage layer's decoders must be total ---

   A store member read off disk can contain literally anything (torn
   writes, bit rot); the codecs classify, they never throw. *)

module Records = Aladin_store.Records
module Corrupt = Aladin_datagen.Corrupt

let bytes_ish =
  QCheck.string_gen_of_size
    (QCheck.Gen.int_range 0 300)
    (QCheck.Gen.map Char.chr (QCheck.Gen.int_range 0 255))

let store_codec_fuzz =
  [
    no_crash "records strict decode total" 500 bytes_ish (fun s ->
        Records.decode s);
    no_crash "records salvage total" 500 bytes_ish (fun s ->
        Records.decode_salvage s);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"records salvage of intact encode is lossless"
         ~count:300 textish (fun doc ->
           match Records.decode_salvage (Records.encode doc) with
           | Some (_, 0) -> true
           | Some (_, _) | None -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"records bit flip never crashes, strict decode refuses"
         ~count:300
         QCheck.(pair textish (pair small_nat small_nat))
         (fun (doc, (byte, bit)) ->
           let stored = Records.encode doc in
           let torn =
             Corrupt.flip_bit_at stored ~byte:(byte mod String.length stored)
               ~bit
           in
           (* a flip either lands where it changes bytes (strict decode
              must refuse) or the codec still classifies it — salvage
              must stay total either way *)
           let _ = Records.decode_salvage torn in
           torn = stored || Records.decode torn = None));
    no_crash "repository salvaging load total" 300 textish (fun s ->
        Aladin_metadata.Repository.load_salvaging s);
    no_crash "feedback salvaging load total" 300 textish (fun s ->
        Aladin.Feedback.load_salvaging s);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"truncate_at is a prefix" ~count:200
         QCheck.(pair textish small_nat)
         (fun (s, n) ->
           let t = Corrupt.truncate_at s n in
           String.length t <= String.length s
           && t = String.sub s 0 (String.length t)));
  ]

let tests =
  [ ("fuzz.parsers", fuzz_tests);
    ("fuzz.import_api", import_api_fuzz);
    ("fuzz.importer_robustness", importer_robustness);
    ("fuzz.store_codecs", store_codec_fuzz);
    ("fuzz.xml_roundtrip", roundtrip_tests) ]
