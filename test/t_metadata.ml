open Aladin_discovery
open Aladin_links
open Aladin_metadata

let check = Alcotest.check

let serial_tests =
  [
    Alcotest.test_case "escape/unescape" `Quick (fun () ->
        let s = "a\tb\nc\\d" in
        check Alcotest.string "roundtrip" s (Serial.unescape (Serial.escape s));
        check Alcotest.bool "no raw tab" true
          (not (String.contains (Serial.escape s) '\t')));
    Alcotest.test_case "record/fields" `Quick (fun () ->
        let fs = [ "plain"; "with\ttab"; "with\nnewline"; "" ] in
        check Alcotest.(list string) "roundtrip" fs (Serial.fields (Serial.record fs)));
    Alcotest.test_case "float roundtrip" `Quick (fun () ->
        let f = 0.123456789 in
        check (Alcotest.float 1e-12) "exact" f
          (Serial.float_of_string_exn (Serial.float_to_string f)));
    Alcotest.test_case "non-finite floats roundtrip" `Quick (fun () ->
        check Alcotest.string "nan spelling" "nan"
          (Serial.float_to_string Float.nan);
        check Alcotest.string "inf spelling" "inf"
          (Serial.float_to_string Float.infinity);
        check Alcotest.string "-inf spelling" "-inf"
          (Serial.float_to_string Float.neg_infinity);
        check Alcotest.bool "nan roundtrip" true
          (Float.is_nan (Serial.float_of_string_exn "nan"));
        check (Alcotest.float 0.) "inf roundtrip" Float.infinity
          (Serial.float_of_string_exn (Serial.float_to_string Float.infinity));
        check (Alcotest.float 0.) "-inf roundtrip" Float.neg_infinity
          (Serial.float_of_string_exn
             (Serial.float_to_string Float.neg_infinity));
        (* negative zero keeps its sign through the hex path *)
        check Alcotest.bool "-0. sign" true
          (1. /. Serial.float_of_string_exn (Serial.float_to_string (-0.))
          = Float.neg_infinity));
    Alcotest.test_case "bad int raises" `Quick (fun () ->
        match Serial.int_of_string_exn "xyz" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"escape roundtrip" ~count:200 QCheck.string
         (fun s -> Serial.unescape (Serial.escape s) = s));
  ]

let mini_profile () =
  Source_profile.analyze (T_discovery.mini_source ())

let sample_link () =
  Link.make
    ~src:(Objref.make ~source:"a" ~relation:"entry" ~accession:"A1")
    ~dst:(Objref.make ~source:"b" ~relation:"prot" ~accession:"B1")
    ~kind:Link.Xref ~confidence:0.9 ~evidence:"test evidence"

let repository_tests =
  [
    Alcotest.test_case "add and find source" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        check Alcotest.bool "found" true (Repository.find_source repo "mini" <> None);
        check Alcotest.int "one" 1 (List.length (Repository.sources repo)));
    Alcotest.test_case "add replaces same name" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        Repository.add_source repo (mini_profile ());
        check Alcotest.int "still one" 1 (List.length (Repository.sources repo)));
    Alcotest.test_case "record contents" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        match Repository.find_source repo "mini" with
        | None -> Alcotest.fail "missing"
        | Some r ->
            check Alcotest.(option (pair string string)) "primary"
              (Some ("entry", "accession")) r.primary;
            check Alcotest.bool "fks" true (r.fks <> []);
            check Alcotest.bool "stats" true (r.stats <> []));
    Alcotest.test_case "links_of symmetric" `Quick (fun () ->
        let repo = Repository.create () in
        let l = sample_link () in
        Repository.set_links repo [ l ];
        check Alcotest.int "src side" 1 (List.length (Repository.links_of repo l.src));
        check Alcotest.int "dst side" 1 (List.length (Repository.links_of repo l.dst)));
    Alcotest.test_case "remove_source drops links" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        Repository.set_links repo [ sample_link () ];
        Repository.remove_source repo "a";
        check Alcotest.int "links gone" 0 (List.length (Repository.links repo)));
    Alcotest.test_case "add_links merges" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.set_links repo [ sample_link () ];
        Repository.add_links repo [ sample_link () ];
        check Alcotest.int "deduped" 1 (List.length (Repository.links repo)));
    Alcotest.test_case "save/load roundtrip" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        Repository.set_links repo [ sample_link () ];
        Repository.set_correspondences repo
          [ { Xref_disc.src_source = "a"; src_relation = "dbxref";
              src_attribute = "accession"; dst_source = "b"; dst_relation = "prot";
              dst_attribute = "accession"; matches = 5; match_frac = 0.5;
              encoded = true } ];
        let doc = Repository.save repo in
        let repo2 = Repository.load doc in
        check Alcotest.int "sources" 1 (List.length (Repository.sources repo2));
        check Alcotest.int "links" 1 (List.length (Repository.links repo2));
        check Alcotest.int "corrs" 1 (List.length (Repository.correspondences repo2));
        (match (Repository.find_source repo "mini", Repository.find_source repo2 "mini") with
        | Some a, Some b ->
            check Alcotest.bool "primary kept" true (a.primary = b.primary);
            check Alcotest.int "fk count" (List.length a.fks) (List.length b.fks);
            check Alcotest.int "stats count" (List.length a.stats) (List.length b.stats)
        | _ -> Alcotest.fail "source lost");
        (match (Repository.links repo2, Repository.links repo) with
        | [ l2 ], [ l1 ] ->
            check Alcotest.bool "link equal" true (Link.same_endpoints l1 l2);
            check Alcotest.string "evidence" l1.evidence l2.evidence
        | _ -> Alcotest.fail "links lost"));
    Alcotest.test_case "load rejects garbage" `Quick (fun () ->
        match Repository.load "not a repo" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "stats_summary" `Quick (fun () ->
        let repo = Repository.create () in
        Repository.add_source repo (mini_profile ());
        match Repository.stats_summary repo with
        | [ (name, rels, rows, _) ] ->
            check Alcotest.string "name" "mini" name;
            check Alcotest.int "rels" 5 rels;
            check Alcotest.bool "rows" true (rows > 0)
        | other -> Alcotest.fail (Printf.sprintf "%d rows" (List.length other)));
  ]

let tests =
  [ ("metadata.serial", serial_tests); ("metadata.repository", repository_tests) ]
