open Aladin_relational
open Aladin_discovery
open Aladin_links

let check = Alcotest.check

(* two tiny cross-referencing sources:
   src_a: entry (primary, AX accessions) + dbxref rows pointing at src_b
   src_b: prot (primary, BX accessions) with descriptions + sequences *)
let source_a () =
  let cat = Catalog.create ~name:"src_a" in
  let entry =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "descr" ])
  in
  List.iteri
    (fun i (acc, d) ->
      Relation.insert entry [| Value.Int (i + 1); Value.text acc; Value.text d |])
    (* description lengths vary widely so that [descr] fails the accession
       length-spread rule and [accession] stays the key *)
    [ ("AX001", "alpha kinase protein involved in DNA repair pathways and signaling");
      ("AX002", "beta transporter protein briefly");
      ("AX003", "gamma receptor protein binding extracellular calcium ligands here") ];
  let dbx =
    Catalog.create_relation cat ~name:"dbxref"
      (Schema.of_names [ "dbxref_id"; "entry_id"; "accession" ])
  in
  List.iteri
    (fun i (eid, target) ->
      Relation.insert dbx [| Value.Int (i + 1); Value.Int eid; Value.text target |])
    [ (1, "BX901"); (2, "BX902"); (3, "SRCB:BX903") ];
  let seq =
    Catalog.create_relation cat ~name:"seqdata"
      (Schema.of_names [ "entry_id"; "seq_text" ])
  in
  Relation.insert seq
    [| Value.Int 1; Value.text "ACGTACGGTACCATGGCATCGATCGGCTAGCTAGGCTAACG" |];
  cat

let source_b () =
  let cat = Catalog.create ~name:"src_b" in
  let prot =
    Catalog.create_relation cat ~name:"prot"
      (Schema.of_names [ "prot_id"; "accession"; "prot_name"; "descr" ])
  in
  List.iteri
    (fun i (acc, name, d) ->
      Relation.insert prot
        [| Value.Int (i + 1); Value.text acc; Value.text name; Value.text d |])
    [ ("BX901", "KIN1A", "alpha kinase protein involved in DNA repair pathways and more");
      ("BX902", "TRP2B", "a transporter of things briefly");
      ("BX903", "RCP3C", "some receptor protein binding extracellular calcium ligand sets") ];
  let seq =
    Catalog.create_relation cat ~name:"bseq"
      (Schema.of_names [ "prot_id"; "seq_text" ])
  in
  Relation.insert seq
    [| Value.Int 1; Value.text "ACGTACGGTACCATGGCTTCGATCGGCTAGCTAGGCTAACG" |];
  cat

let profiles () =
  Profile_list.of_profiles
    [ Source_profile.analyze (source_a ()); Source_profile.analyze (source_b ()) ]

let objref_tests =
  [
    Alcotest.test_case "to_string and compare" `Quick (fun () ->
        let a = Objref.make ~source:"s" ~relation:"r" ~accession:"X1" in
        let b = Objref.make ~source:"s" ~relation:"r" ~accession:"X2" in
        check Alcotest.string "str" "s:X1" (Objref.to_string a);
        check Alcotest.bool "order" true (Objref.compare a b < 0);
        check Alcotest.bool "equal" true (Objref.equal a a));
  ]

let link_tests =
  let obj s acc = Objref.make ~source:s ~relation:"r" ~accession:acc in
  [
    Alcotest.test_case "normalized orders symmetric kinds" `Quick (fun () ->
        let l =
          Link.make ~src:(obj "z" "Z") ~dst:(obj "a" "A") ~kind:Link.Duplicate
            ~confidence:0.9 ~evidence:"e"
        in
        let n = Link.normalized l in
        check Alcotest.string "src" "a:A" (Objref.to_string n.src));
    Alcotest.test_case "xref keeps direction" `Quick (fun () ->
        let l =
          Link.make ~src:(obj "z" "Z") ~dst:(obj "a" "A") ~kind:Link.Xref
            ~confidence:0.9 ~evidence:"e"
        in
        check Alcotest.string "src" "z:Z" (Objref.to_string (Link.normalized l).src));
    Alcotest.test_case "dedup keeps max confidence" `Quick (fun () ->
        let mk c =
          Link.make ~src:(obj "a" "A") ~dst:(obj "b" "B") ~kind:Link.Text_similarity
            ~confidence:c ~evidence:"e"
        in
        match Link.dedup [ mk 0.3; mk 0.8; mk 0.5 ] with
        | [ l ] -> check (Alcotest.float 0.001) "conf" 0.8 l.confidence
        | ls -> Alcotest.fail (Printf.sprintf "%d links" (List.length ls)));
    Alcotest.test_case "dedup respects kind" `Quick (fun () ->
        let mk kind =
          Link.make ~src:(obj "a" "A") ~dst:(obj "b" "B") ~kind ~confidence:0.5
            ~evidence:"e"
        in
        check Alcotest.int "two kinds" 2
          (List.length (Link.dedup [ mk Link.Xref; mk Link.Duplicate ])));
    Alcotest.test_case "same_endpoints symmetric" `Quick (fun () ->
        let l1 =
          Link.make ~src:(obj "a" "A") ~dst:(obj "b" "B") ~kind:Link.Duplicate
            ~confidence:0.5 ~evidence:"e"
        in
        let l2 =
          Link.make ~src:(obj "b" "B") ~dst:(obj "a" "A") ~kind:Link.Duplicate
            ~confidence:0.7 ~evidence:"e"
        in
        check Alcotest.bool "same" true (Link.same_endpoints l1 l2));
  ]

let owner_map_tests =
  [
    Alcotest.test_case "primary rows own themselves" `Quick (fun () ->
        let sp = Source_profile.analyze (source_a ()) in
        let om = Owner_map.build sp in
        check Alcotest.(list string) "self" [ "AX001" ]
          (Owner_map.owners om ~relation:"entry" ~row:0));
    Alcotest.test_case "secondary rows owned" `Quick (fun () ->
        let sp = Source_profile.analyze (source_a ()) in
        let om = Owner_map.build sp in
        check Alcotest.(list string) "dbxref row 1 -> AX002" [ "AX002" ]
          (Owner_map.owners om ~relation:"dbxref" ~row:1));
    Alcotest.test_case "unknown relation empty" `Quick (fun () ->
        let sp = Source_profile.analyze (source_a ()) in
        let om = Owner_map.build sp in
        check Alcotest.(list string) "empty" [] (Owner_map.owners om ~relation:"zz" ~row:0));
    Alcotest.test_case "objref for accession" `Quick (fun () ->
        let sp = Source_profile.analyze (source_a ()) in
        let om = Owner_map.build sp in
        check Alcotest.bool "found" true (Owner_map.objref om ~accession:"AX001" <> None);
        check Alcotest.bool "missing" true (Owner_map.objref om ~accession:"zz" = None));
    Alcotest.test_case "primary accessions in order" `Quick (fun () ->
        let sp = Source_profile.analyze (source_a ()) in
        let om = Owner_map.build sp in
        check Alcotest.(list string) "accs" [ "AX001"; "AX002"; "AX003" ]
          (Owner_map.primary_accessions om));
  ]

let prune_tests =
  [
    Alcotest.test_case "numeric excluded" `Quick (fun () ->
        let cs =
          Col_stats.of_column ~relation:"r" ~attribute:"a"
            (Array.init 10 (fun i -> Value.Int i))
        in
        check Alcotest.bool "pruned" false
          (Prune.is_link_source Prune.default_params cs));
    Alcotest.test_case "few distinct excluded" `Quick (fun () ->
        let cs =
          Col_stats.of_column ~relation:"r" ~attribute:"a"
            [| Value.text "same"; Value.text "same" |]
        in
        check Alcotest.bool "pruned" false (Prune.is_link_source Prune.default_params cs));
    Alcotest.test_case "accession-like passes" `Quick (fun () ->
        let cs =
          Col_stats.of_column ~relation:"r" ~attribute:"a"
            [| Value.text "AB001"; Value.text "AB002"; Value.text "AB003" |]
        in
        check Alcotest.bool "kept" true (Prune.is_link_source Prune.default_params cs));
    Alcotest.test_case "no_pruning passes numerics" `Quick (fun () ->
        let cs =
          Col_stats.of_column ~relation:"r" ~attribute:"a" [| Value.Int 1; Value.Int 2 |]
        in
        check Alcotest.bool "kept" true (Prune.is_link_source Prune.no_pruning cs));
    Alcotest.test_case "pruning shrinks comparison space" `Quick (fun () ->
        let ps = profiles () in
        let pruned = Prune.pairs_to_compare Prune.default_params ps in
        let full = Prune.pairs_to_compare Prune.no_pruning ps in
        check Alcotest.bool "fewer" true (pruned < full);
        check Alcotest.bool "positive" true (pruned > 0));
    Alcotest.test_case "is_text_field" `Quick (fun () ->
        let long =
          Col_stats.of_column ~relation:"r" ~attribute:"a"
            [| Value.text (String.concat " " (List.init 10 (fun _ -> "word"))) |]
        in
        check Alcotest.bool "text" true (Prune.is_text_field long));
  ]

let xref_tests =
  [
    Alcotest.test_case "decode_candidates" `Quick (fun () ->
        let toks = Xref_disc.decode_candidates "Uniprot:P11140" in
        check Alcotest.bool "tail found" true (List.mem "P11140" toks);
        check Alcotest.bool "whole first" true (List.hd toks = "Uniprot:P11140"));
    Alcotest.test_case "finds exact and encoded refs" `Quick (fun () ->
        let r = Xref_disc.discover (profiles ()) in
        let keys =
          List.map
            (fun (l : Link.t) ->
              (Objref.to_string l.src, Objref.to_string l.dst))
            r.links
        in
        check Alcotest.bool "AX001->BX901" true
          (List.mem ("src_a:AX001", "src_b:BX901") keys);
        check Alcotest.bool "encoded AX003->BX903" true
          (List.mem ("src_a:AX003", "src_b:BX903") keys));
    Alcotest.test_case "correspondence recorded" `Quick (fun () ->
        let r = Xref_disc.discover (profiles ()) in
        check Alcotest.bool "dbxref.accession" true
          (List.exists
             (fun (c : Xref_disc.correspondence) ->
               c.src_relation = "dbxref" && c.src_attribute = "accession"
               && c.dst_source = "src_b")
             r.correspondences));
    Alcotest.test_case "min_matches blocks sparse" `Quick (fun () ->
        let params = { Xref_disc.default_params with min_matches = 10 } in
        let r = Xref_disc.discover ~params (profiles ()) in
        check Alcotest.int "no links" 0 (List.length r.links));
    Alcotest.test_case "counters populated" `Quick (fun () ->
        let r = Xref_disc.discover (profiles ()) in
        check Alcotest.bool "scanned" true (r.attributes_scanned > 0);
        check Alcotest.bool "compared" true (r.pairs_compared > 0));
  ]

let seq_link_tests =
  [
    Alcotest.test_case "sequence fields detected" `Quick (fun () ->
        let fields = Seq_links.sequence_fields Seq_links.default_params (profiles ()) in
        check Alcotest.bool "src_a seqdata" true
          (List.exists
             (fun (f : Seq_links.seq_field) ->
               f.source = "src_a" && f.relation = "seqdata")
             fields);
        check Alcotest.bool "descr not sequence" true
          (not
             (List.exists
                (fun (f : Seq_links.seq_field) -> f.attribute = "descr")
                fields)));
    Alcotest.test_case "homolog link found cross-source" `Quick (fun () ->
        let r = Seq_links.discover (profiles ()) in
        check Alcotest.bool "link AX001-BX901" true
          (List.exists
             (fun (l : Link.t) ->
               l.kind = Link.Seq_similarity
               && ((l.src.Objref.accession = "AX001" && l.dst.Objref.accession = "BX901")
                  || (l.src.Objref.accession = "BX901" && l.dst.Objref.accession = "AX001")))
             r.links));
    Alcotest.test_case "indexing counter" `Quick (fun () ->
        let r = Seq_links.discover (profiles ()) in
        check Alcotest.int "two sequences" 2 r.sequences_indexed);
  ]

let seq_state_tests =
  [
    Alcotest.test_case "state matches batch discovery" `Quick (fun () ->
        let ps = profiles () in
        let batch = Seq_links.discover ps in
        let st = Seq_links.state_create () in
        let fresh_a = Seq_links.state_add_source st ps ~source:"src_a" in
        let fresh_b = Seq_links.state_add_source st ps ~source:"src_b" in
        check Alcotest.int "first add finds nothing new" 0 (List.length fresh_a);
        check Alcotest.bool "second add finds the pair" true (fresh_b <> []);
        let key l =
          let l = Link.normalized l in
          Objref.to_string l.Link.src ^ "|" ^ Objref.to_string l.Link.dst
        in
        check
          Alcotest.(list string)
          "same links"
          (List.sort String.compare (List.map key batch.links))
          (List.sort String.compare (List.map key (Seq_links.state_links st))));
    Alcotest.test_case "double add raises" `Quick (fun () ->
        let ps = profiles () in
        let st = Seq_links.state_create () in
        ignore (Seq_links.state_add_source st ps ~source:"src_a");
        match Seq_links.state_add_source st ps ~source:"src_a" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no error");
    Alcotest.test_case "sources tracked in order" `Quick (fun () ->
        let ps = profiles () in
        let st = Seq_links.state_create () in
        ignore (Seq_links.state_add_source st ps ~source:"src_a");
        ignore (Seq_links.state_add_source st ps ~source:"src_b");
        check Alcotest.(list string) "order" [ "src_a"; "src_b" ]
          (Seq_links.state_sources st));
  ]

let text_link_tests =
  [
    Alcotest.test_case "documents assembled per object" `Quick (fun () ->
        let docs = Text_links.object_documents (profiles ()) in
        check Alcotest.bool "some docs" true (List.length docs >= 4);
        check Alcotest.bool "AX001 has doc" true
          (List.exists
             (fun ((o : Objref.t), d) -> o.accession = "AX001" && d <> "")
             docs));
    Alcotest.test_case "similar descriptions linked" `Quick (fun () ->
        let params = { Text_links.default_params with min_cosine = 0.4 } in
        let r = Text_links.discover ~params (profiles ()) in
        check Alcotest.bool "AX001~BX901" true
          (List.exists
             (fun (l : Link.t) ->
               l.kind = Link.Text_similarity
               && ((l.src.Objref.accession = "AX001" && l.dst.Objref.accession = "BX901")
                  || (l.src.Objref.accession = "BX901" && l.dst.Objref.accession = "AX001")))
             r.links));
    Alcotest.test_case "no same-source links by default" `Quick (fun () ->
        let r = Text_links.discover (profiles ()) in
        check Alcotest.bool "all cross" true
          (List.for_all
             (fun (l : Link.t) -> l.src.Objref.source <> l.dst.Objref.source)
             r.links));
    Alcotest.test_case "discover identical at pool sizes 1/2/4" `Quick
      (fun () ->
        let norm (r : Text_links.result) =
          ( List.map (Format.asprintf "%a" Link.pp) r.links,
            r.documents,
            r.mention_links )
        in
        let params = { Text_links.default_params with min_cosine = 0.3 } in
        let base = norm (Text_links.discover ~params (profiles ())) in
        List.iter
          (fun domains ->
            let p = Aladin_par.Pool.create ~domains () in
            Fun.protect
              ~finally:(fun () -> Aladin_par.Pool.shutdown p)
              (fun () ->
                check
                  Alcotest.(triple (list string) int int)
                  (Printf.sprintf "domains=%d" domains)
                  base
                  (norm (Text_links.discover ~params ~pool:p (profiles ())))))
          [ 1; 2; 4 ]);
  ]

(* a source pair built for entity mentions: src_c's primary relation has a
   name-like symbol column (all-alpha, unique, 3..25 chars) whose lengths
   vary widely so it fails the accession length-spread/min-length rules and
   [accession] stays the key; src_d's text fields mention those symbols *)
let mention_source_c () =
  let cat = Catalog.create ~name:"src_c" in
  let gene =
    Catalog.create_relation cat ~name:"gene"
      (Schema.of_names [ "gene_id"; "accession"; "symbol" ])
  in
  List.iteri
    (fun i (acc, sym) ->
      Relation.insert gene [| Value.Int (i + 1); Value.text acc; Value.text sym |])
    [ ("CX001", "alphakin");
      ("CX002", "betatransporterkinase");
      ("CX003", "grx") ];
  cat

let mention_source_d () =
  let cat = Catalog.create ~name:"src_d" in
  let entry =
    Catalog.create_relation cat ~name:"entry"
      (Schema.of_names [ "entry_id"; "accession"; "descr" ])
  in
  List.iteri
    (fun i (acc, d) ->
      Relation.insert entry [| Value.Int (i + 1); Value.text acc; Value.text d |])
    (* description lengths vary widely so that [descr] fails the accession
       length-spread rule and [accession] stays the key *)
    [ ("DX001", "this enzyme interacts with alphakin during nucleotide repair");
      ("DX002", "inert decoy");
      ("DX003",
       "weak homolog of betatransporterkinase observed in two hybrid assays") ];
  cat

let mention_profiles () =
  Profile_list.of_profiles
    [ Source_profile.analyze (mention_source_c ());
      Source_profile.analyze (mention_source_d ()) ]

let mention_link_tests =
  [
    Alcotest.test_case "dictionary symbols in text become mention links"
      `Quick (fun () ->
        let r = Text_links.discover (mention_profiles ()) in
        let mention src dst =
          List.exists
            (fun (l : Link.t) ->
              l.kind = Link.Entity_mention
              && ((l.src.Objref.accession = src && l.dst.Objref.accession = dst)
                 || (l.src.Objref.accession = dst && l.dst.Objref.accession = src)))
            r.links
        in
        check Alcotest.bool "DX001 mentions alphakin/CX001" true
          (mention "DX001" "CX001");
        check Alcotest.bool "DX003 mentions betatransporterkinase/CX002" true
          (mention "DX003" "CX002");
        check Alcotest.bool "counted" true (r.mention_links >= 2));
    Alcotest.test_case "mention links equal the old recognize-then-filter path"
      `Quick (fun () ->
        (* the old pass scored EVERY token's surface shape, then dropped
           non-dictionary mentions at the lookup; replicate it and compare
           the resulting link set with the dictionary-only fast path *)
        let ps = mention_profiles () in
        let r = Text_links.discover ps in
        let fast =
          List.filter (fun (l : Link.t) -> l.kind = Link.Entity_mention) r.links
          |> List.map (Format.asprintf "%a" Link.pp)
        in
        let module Tx = Aladin_text in
        let dict : (string, Objref.t) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (sym, acc) ->
            Hashtbl.replace dict sym
              (Objref.make ~source:"src_c" ~relation:"gene" ~accession:acc))
          [ ("alphakin", "CX001");
            ("betatransporterkinase", "CX002");
            ("grx", "CX003") ];
        let recognizer = Tx.Entity_recog.create () in
        Tx.Entity_recog.add_dictionary recognizer
          (Hashtbl.fold (fun name _ acc -> name :: acc) dict []);
        let old_links = ref [] in
        List.iter
          (fun (obj, doc) ->
            Tx.Entity_recog.recognize recognizer ~min_score:1.0 doc
            |> List.iter (fun (m : Tx.Entity_recog.mention) ->
                   match
                     Hashtbl.find_opt dict (String.lowercase_ascii m.surface)
                   with
                   | None -> ()
                   | Some target ->
                       if
                         obj.Objref.source <> target.Objref.source
                         && not (Objref.equal obj target)
                       then
                         old_links :=
                           Link.make ~src:obj ~dst:target
                             ~kind:Link.Entity_mention
                             ~confidence:(0.6 *. m.score)
                             ~evidence:(Printf.sprintf "mention %S" m.surface)
                           :: !old_links))
          (Text_links.object_documents ps);
        let old_path =
          Link.dedup !old_links |> List.map (Format.asprintf "%a" Link.pp)
        in
        check Alcotest.(list string) "same links" old_path fast);
  ]

let count_by_kind_tests =
  let obj s acc = Objref.make ~source:s ~relation:"r" ~accession:acc in
  let mk i kind =
    Link.make ~src:(obj "a" (Printf.sprintf "A%d" i)) ~dst:(obj "b" "B1") ~kind
      ~confidence:0.9 ~evidence:"t"
  in
  [
    Alcotest.test_case "counts in kind order, zero kinds omitted" `Quick
      (fun () ->
        let links =
          List.concat
            [ List.init 3 (fun i -> mk i Link.Text_similarity);
              List.init 2 (fun i -> mk i Link.Xref);
              [ mk 0 Link.Duplicate ] ]
        in
        check
          Alcotest.(list (pair string int))
          "counts"
          [ ("xref", 2); ("text", 3); ("duplicate", 1) ]
          (List.map
             (fun (k, n) -> (Link.kind_name k, n))
             (Linker.count_by_kind links)));
    Alcotest.test_case "empty" `Quick (fun () ->
        check Alcotest.int "none" 0 (List.length (Linker.count_by_kind [])));
  ]

let onto_tests =
  let obj s acc = Objref.make ~source:s ~relation:"r" ~accession:acc in
  let obj' s relation acc = Objref.make ~source:s ~relation ~accession:acc in
  let xref src dst =
    Link.make ~src ~dst ~kind:Link.Xref ~confidence:0.9 ~evidence:"t"
  in
  [
    Alcotest.test_case "shared target links pair" `Quick (fun () ->
        let term = obj "go" "GO:1" in
        let r =
          Onto_links.discover
            ~xrefs:[ xref (obj "a" "A1") term; xref (obj "b" "B1") term ]
            ()
        in
        check Alcotest.int "one link" 1 (List.length r.links);
        check Alcotest.bool "kind" true
          ((List.hd r.links).kind = Link.Shared_term));
    Alcotest.test_case "same-source pair not linked" `Quick (fun () ->
        let term = obj "go" "GO:1" in
        let r =
          Onto_links.discover
            ~xrefs:[ xref (obj "a" "A1") term; xref (obj "a" "A2") term ]
            ()
        in
        check Alcotest.int "none" 0 (List.length r.links));
    Alcotest.test_case "hub skipped" `Quick (fun () ->
        let term = obj "go" "GO:1" in
        let xrefs =
          List.init 30 (fun i -> xref (obj (Printf.sprintf "s%d" i) "A") term)
        in
        let r = Onto_links.discover ~params:{ Onto_links.default_params with max_fanout = 10 } ~xrefs () in
        check Alcotest.int "skipped" 1 r.hub_targets_skipped;
        check Alcotest.int "no links" 0 (List.length r.links));
    Alcotest.test_case "hierarchy expansion links siblings" `Quick (fun () ->
        (* A refs term T1, B refs term T2; T1 and T2 are both children of P *)
        let t1 = obj "go" "GO:1" and t2 = obj "go" "GO:2" and p = obj "go" "GO:P" in
        let a = obj "a" "A1" and b = obj "b" "B1" in
        let parents o =
          if Objref.equal o t1 || Objref.equal o t2 then [ p ] else []
        in
        let without =
          Onto_links.discover ~xrefs:[ xref a t1; xref b t2 ] ()
        in
        check Alcotest.int "no link without hierarchy" 0
          (List.length without.links);
        let with_h =
          Onto_links.discover ~parents ~xrefs:[ xref a t1; xref b t2 ] ()
        in
        check Alcotest.int "linked via parent" 1 (List.length with_h.links));
    Alcotest.test_case "parents_from_profiles finds term_isa" `Quick (fun () ->
        let u = Aladin_datagen.Universe.generate Aladin_datagen.Universe.default_params in
        let spec =
          Aladin_datagen.Source_gen.make_spec ~name:"go" Aladin_datagen.Universe.Term
            ~coverage:1.0
            ~shape:
              { Aladin_datagen.Source_gen.default_shape with
                primary_name = "term"; accession_pattern = "GO:00#####";
                with_sequence_table = false; with_keyword_dictionary = false;
                with_organism_dictionary = false }
        in
        let assignment =
          [ ("go", Aladin_datagen.Source_gen.assign_accessions u spec) ]
        in
        let gold = Aladin_datagen.Gold.create () in
        let cat = Aladin_datagen.Source_gen.build u assignment ~gold spec in
        let profiles =
          Profile_list.of_profiles [ Source_profile.analyze cat ]
        in
        let parents = Onto_links.parents_from_profiles profiles in
        let has_parent =
          Profile_list.entries profiles
          |> List.concat_map (fun (e : Profile_list.entry) ->
                 Owner_map.primary_accessions e.owner)
          |> List.exists (fun acc ->
                 parents (obj' "go" "term" acc) <> [])
        in
        check Alcotest.bool "some term has a parent" true has_parent);
    Alcotest.test_case "min_shared" `Quick (fun () ->
        let t1 = obj "go" "GO:1" and t2 = obj "go" "GO:2" in
        let a = obj "a" "A1" and b = obj "b" "B1" in
        let r =
          Onto_links.discover
            ~params:{ Onto_links.default_params with min_shared = 2 }
            ~xrefs:[ xref a t1; xref b t1; xref a t2; xref b t2 ]
            ()
        in
        check Alcotest.int "one strong link" 1 (List.length r.links));
  ]

let linker_tests =
  [
    Alcotest.test_case "all kinds discovered" `Quick (fun () ->
        let r = Linker.discover (profiles ()) in
        let kinds = List.map fst (Linker.count_by_kind r.links) in
        check Alcotest.bool "xref" true (List.mem Link.Xref kinds);
        check Alcotest.bool "seq" true (List.mem Link.Seq_similarity kinds));
    Alcotest.test_case "disable flags" `Quick (fun () ->
        let params =
          { Linker.default_params with enable_seq = false; enable_text = false;
            enable_onto = false }
        in
        let r = Linker.discover ~params (profiles ()) in
        check Alcotest.bool "no seq result" true (r.seq_result = None);
        check Alcotest.bool "only xrefs" true
          (List.for_all (fun (l : Link.t) -> l.kind = Link.Xref) r.links));
  ]

let tests =
  [
    ("linkdisc.objref", objref_tests);
    ("linkdisc.link", link_tests);
    ("linkdisc.owner_map", owner_map_tests);
    ("linkdisc.prune", prune_tests);
    ("linkdisc.xref_disc", xref_tests);
    ("linkdisc.seq_links", seq_link_tests);
    ("linkdisc.seq_state", seq_state_tests);
    ("linkdisc.text_links", text_link_tests);
    ("linkdisc.mention_links", mention_link_tests);
    ("linkdisc.count_by_kind", count_by_kind_tests);
    ("linkdisc.onto_links", onto_tests);
    ("linkdisc.linker", linker_tests);
  ]
