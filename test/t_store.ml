(* Crash-safety acceptance tests for the snapshot store (ISSUE 4):
   CRC vectors, record-level salvage, quarantine/repair, and the
   torn-write property — a save killed at ANY byte offset must leave
   the previous snapshot loadable byte-identically. *)

open Aladin_store
module Corrupt = Aladin_datagen.Corrupt

let check = Alcotest.check

let fresh_dir tag =
  let d = Filename.temp_file "aladin" tag in
  Sys.remove d;
  d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let committed_report dir =
  match Snapshot.verify dir with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("verify: " ^ msg)

let gen_dir dir gen = Filename.concat dir (Printf.sprintf "snap-%08d" gen)

let stored_path dir gen member = Filename.concat (gen_dir dir gen) member

let save_exn dir members =
  match Snapshot.save dir members with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("save: " ^ msg)

let load_exn dir =
  match Snapshot.load dir with
  | Ok (members, report) -> (members, report)
  | Error msg -> Alcotest.fail ("load: " ^ msg)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let sorted_members ms =
  List.sort
    (fun (a : Snapshot.member) (b : Snapshot.member) ->
      String.compare a.path b.path)
    ms

(* every committed byte of the store: the manifest plus the committed
   generation's files. Partial generations from killed saves are
   deliberately excluded — they are invisible until a manifest commits
   them, and get swept by the next successful save/load. *)
let committed_bytes dir =
  let report = committed_report dir in
  let sdir = gen_dir dir report.generation in
  let rec walk acc path rel =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc e ->
          walk acc (Filename.concat path e)
            (if rel = "" then e else rel ^ "/" ^ e))
        acc (Sys.readdir path)
    else (rel, read_file path) :: acc
  in
  let files = if Sys.file_exists sdir then walk [] sdir "" else [] in
  ( read_file (Filename.concat dir "MANIFEST"),
    List.sort compare files )

let test_members : Snapshot.member list =
  [
    { path = "a/recs.txt"; kind = Records;
      content = "alpha\nbeta\twith tab\ngamma\n" };
    { path = "a/table.csv"; kind = Csv;
      content = "id,name\n1,aardvark\n2,badger\n3,civet\n" };
    { path = "blob.bin"; kind = Opaque; content = "\x00\x01binary\xffpayload" };
  ]

let crc_tests =
  [
    Alcotest.test_case "crc32 check vector" `Quick (fun () ->
        (* the canonical IEEE 802.3 test vector *)
        check Alcotest.int "123456789" 0xCBF43926 (Crc32.string "123456789");
        check Alcotest.int "empty" 0 (Crc32.string ""));
    Alcotest.test_case "crc32 update composes" `Quick (fun () ->
        let a = "aladin" and b = "\tstore\nbytes" in
        check Alcotest.int "concat"
          (Crc32.string (a ^ b))
          (Crc32.update (Crc32.update 0 a) b));
    Alcotest.test_case "crc32 hex roundtrip" `Quick (fun () ->
        List.iter
          (fun v ->
            check Alcotest.(option int) "roundtrip" (Some v)
              (Crc32.of_hex (Crc32.to_hex v)))
          [ 0; 1; 0xCBF43926; 0xFFFFFFFF ];
        check Alcotest.(option int) "too short" None (Crc32.of_hex "abc");
        check Alcotest.(option int) "not hex" None (Crc32.of_hex "xyzwxyzw"));
  ]

let records_tests =
  [
    Alcotest.test_case "records encode/decode roundtrip" `Quick (fun () ->
        let doc = "one\ntwo\tkeeps tabs\n\nfour\n" in
        check Alcotest.(option string) "roundtrip" (Some doc)
          (Records.decode (Records.encode doc));
        (* a missing final newline is normalized, not lost *)
        check Alcotest.(option string) "normalized" (Some "a\nb\n")
          (Records.decode (Records.encode "a\nb")));
    Alcotest.test_case "records bit flip drops exactly one record" `Quick
      (fun () ->
        let doc = "alpha\nbeta\ngamma\n" in
        let stored = Records.encode doc in
        (* flip a bit inside beta's payload: each stored line is
           "<8 hex>\t<payload>\n", so beta's 't' sits 4 bytes before the
           gamma line *)
        let byte = String.length stored - (8 + 1 + 5 + 1) - 4 in
        let torn = Corrupt.flip_bit_at stored ~byte ~bit:2 in
        check Alcotest.(option string) "strict decode refuses" None
          (Records.decode torn);
        match Records.decode_salvage torn with
        | None -> Alcotest.fail "salvage gave up"
        | Some (kept, dropped) ->
            check Alcotest.int "one dropped" 1 dropped;
            check Alcotest.string "others survive" "alpha\ngamma\n" kept);
    Alcotest.test_case "records truncation keeps the prefix" `Quick (fun () ->
        let doc = "alpha\nbeta\ngamma\ndelta\n" in
        let stored = Records.encode doc in
        (* each stored line is "<8 hex>\t<payload>\n"; cut midway through
           the gamma line so it is torn and delta is gone entirely *)
        let line len = 8 + 1 + len + 1 in
        let cut = String.length stored - line 5 - (line 5 - 4) in
        match Records.decode_salvage (Corrupt.truncate_at stored cut) with
        | None -> Alcotest.fail "salvage gave up"
        | Some (kept, dropped) ->
            check Alcotest.string "prefix" "alpha\nbeta\n" kept;
            check Alcotest.int "shortfall counted" 2 dropped);
    Alcotest.test_case "records salvage without header" `Quick (fun () ->
        let stored = Records.encode "alpha\nbeta\n" in
        (* strip the header line entirely: records can still verify *)
        let body =
          String.sub stored
            (String.index stored '\n' + 1)
            (String.length stored - String.index stored '\n' - 1)
        in
        match Records.decode_salvage body with
        | None -> Alcotest.fail "salvage gave up"
        | Some (kept, _dropped) ->
            check Alcotest.string "lines recovered" "alpha\nbeta\n" kept);
  ]

let snapshot_tests =
  [
    Alcotest.test_case "snapshot save/load roundtrip" `Quick (fun () ->
        let dir = fresh_dir "st1" in
        save_exn dir test_members;
        let members, report = load_exn dir in
        check Alcotest.bool "clean" true (Load_report.is_clean report);
        check Alcotest.int "generation" 1 report.generation;
        List.iter2
          (fun (a : Snapshot.member) (b : Snapshot.member) ->
            check Alcotest.string "path" a.path b.path;
            check Alcotest.string ("content of " ^ a.path) a.content b.content)
          (sorted_members test_members)
          (sorted_members members));
    Alcotest.test_case "re-save advances generation and sweeps the old one"
      `Quick (fun () ->
        let dir = fresh_dir "st2" in
        save_exn dir test_members;
        save_exn dir test_members;
        let report = committed_report dir in
        check Alcotest.int "generation" 2 report.generation;
        check Alcotest.bool "old generation swept" false
          (Sys.file_exists (gen_dir dir 1)));
    Alcotest.test_case "save refuses foreign non-empty directories" `Quick
      (fun () ->
        let dir = fresh_dir "st3" in
        Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "precious.txt") "user data\n";
        (match Snapshot.save dir test_members with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "clobbered a user directory");
        check Alcotest.string "file untouched" "user data\n"
          (read_file (Filename.concat dir "precious.txt")));
    Alcotest.test_case "stale temps and orphan generations are swept" `Quick
      (fun () ->
        let dir = fresh_dir "st4" in
        save_exn dir test_members;
        let orphan = gen_dir dir 999 in
        Sys.mkdir orphan 0o755;
        write_file (Filename.concat orphan "junk") "torn";
        write_file (Filename.concat dir "MANIFEST.aladin-tmp") "torn";
        let _ = load_exn dir in
        check Alcotest.bool "orphan gone" false (Sys.file_exists orphan);
        check Alcotest.bool "temp gone" false
          (Sys.file_exists (Filename.concat dir "MANIFEST.aladin-tmp")));
    Alcotest.test_case "verify is read-only" `Quick (fun () ->
        let dir = fresh_dir "st5" in
        save_exn dir test_members;
        let path = stored_path dir 1 "blob.bin" in
        let torn = Corrupt.flip_bit_at (read_file path) ~byte:3 ~bit:0 in
        write_file path torn;
        let report = committed_report dir in
        check Alcotest.bool "damage seen" false (Load_report.is_clean report);
        check Alcotest.string "file untouched" torn (read_file path);
        check Alcotest.bool "no quarantine" false
          (Sys.file_exists (Filename.concat dir ".quarantine")));
    Alcotest.test_case "bit flip in a records member salvages" `Quick (fun () ->
        let dir = fresh_dir "st6" in
        save_exn dir test_members;
        let path = stored_path dir 1 "a/recs.txt" in
        let stored = read_file path in
        (* flip a payload bit in the last record's line *)
        write_file path
          (Corrupt.flip_bit_at stored ~byte:(String.length stored - 3) ~bit:1);
        let members, report = load_exn dir in
        (match Load_report.find report "a/recs.txt" with
        | Some (Load_report.Salvaged n) -> check Alcotest.int "dropped" 1 n
        | other ->
            Alcotest.failf "expected Salvaged, got %s"
              (match other with
              | Some s -> Load_report.status_name s
              | None -> "absent"));
        check Alcotest.(option string) "good records kept"
          (Some "alpha\nbeta\twith tab\n")
          (Snapshot.find members "a/recs.txt"));
    Alcotest.test_case "arity-breaking damage in a csv drops the row" `Quick
      (fun () ->
        let dir = fresh_dir "st7" in
        save_exn dir test_members;
        let path = stored_path dir 1 "a/table.csv" in
        let stored = read_file path in
        (* corrupt the comma of the "2,badger" row: the row no longer
           fits the header arity and must be dropped, not parsed *)
        let comma =
          let i = ref (-1) in
          String.iteri
            (fun j c ->
              if !i < 0 && c = ',' && j > 0 && stored.[j - 1] = '2' then i := j)
            stored;
          !i
        in
        check Alcotest.bool "found the comma" true (comma > 0);
        write_file path (Corrupt.flip_bit_at stored ~byte:comma ~bit:0);
        let members, report = load_exn dir in
        (match Load_report.find report "a/table.csv" with
        | Some (Load_report.Salvaged n) ->
            check Alcotest.bool "rows dropped" true (n >= 1)
        | _ -> Alcotest.fail "expected Salvaged");
        match Snapshot.find members "a/table.csv" with
        | None -> Alcotest.fail "csv lost entirely"
        | Some csv ->
            check Alcotest.bool "bad row gone" false (contains csv "badger");
            check Alcotest.bool "good row kept" true (contains csv "civet"));
    Alcotest.test_case "unrecoverable members are quarantined with a reason"
      `Quick (fun () ->
        let dir = fresh_dir "st8" in
        save_exn dir test_members;
        let path = stored_path dir 1 "blob.bin" in
        write_file path (Corrupt.flip_bit_at (read_file path) ~byte:5 ~bit:4);
        let members, report = load_exn dir in
        (match Load_report.find report "blob.bin" with
        | Some (Load_report.Quarantined _) -> ()
        | _ -> Alcotest.fail "expected Quarantined");
        check Alcotest.(option string) "member absent" None
          (Snapshot.find members "blob.bin");
        let qdir = Filename.concat dir ".quarantine" in
        check Alcotest.bool "quarantine dir" true (Sys.file_exists qdir);
        check Alcotest.bool "reason recorded" true
          (Array.exists
             (fun e -> Filename.check_suffix e ".reason")
             (Sys.readdir qdir)));
    Alcotest.test_case "missing members are reported, not fatal" `Quick
      (fun () ->
        let dir = fresh_dir "st9" in
        save_exn dir test_members;
        Sys.remove (stored_path dir 1 "blob.bin");
        let _, report = load_exn dir in
        match Load_report.find report "blob.bin" with
        | Some Load_report.Missing -> ()
        | _ -> Alcotest.fail "expected Missing");
    Alcotest.test_case "repair commits the salvage as a clean snapshot" `Quick
      (fun () ->
        let dir = fresh_dir "st10" in
        save_exn dir test_members;
        let rpath = stored_path dir 1 "a/recs.txt" in
        let stored = read_file rpath in
        write_file rpath
          (Corrupt.flip_bit_at stored ~byte:(String.length stored - 3) ~bit:1);
        Sys.remove (stored_path dir 1 "blob.bin");
        (match Snapshot.repair dir with
        | Ok report ->
            check Alcotest.bool "repair reports damage" false
              (Load_report.is_clean report)
        | Error msg -> Alcotest.fail ("repair: " ^ msg));
        let report = committed_report dir in
        check Alcotest.bool "clean after repair" true
          (Load_report.is_clean report);
        let members, report2 = load_exn dir in
        check Alcotest.bool "clean load after repair" true
          (Load_report.is_clean report2);
        check Alcotest.(option string) "salvaged content committed"
          (Some "alpha\nbeta\twith tab\n")
          (Snapshot.find members "a/recs.txt"));
    Alcotest.test_case "repair of a clean store is a no-op" `Quick (fun () ->
        let dir = fresh_dir "st11" in
        save_exn dir test_members;
        let before = committed_bytes dir in
        (match Snapshot.repair dir with
        | Ok report ->
            check Alcotest.bool "clean" true (Load_report.is_clean report)
        | Error msg -> Alcotest.fail ("repair: " ^ msg));
        check Alcotest.bool "nothing rewritten" true
          (before = committed_bytes dir));
  ]

(* --- the tentpole acceptance property ------------------------------- *)

let altered_members : Snapshot.member list =
  List.map
    (fun (m : Snapshot.member) ->
      { m with content = m.content ^ "appended-by-second-save\n" })
    test_members

let torn_write_tests =
  [
    Alcotest.test_case "kill at every byte keeps snapshot 1 byte-identical"
      `Slow (fun () ->
        let dir = fresh_dir "torn" in
        save_exn dir test_members;
        let baseline = committed_bytes dir in
        let kills = ref 0 in
        let rec attempt budget =
          Fault.arm ~bytes:budget;
          match Snapshot.save dir altered_members with
          | exception Fault.Killed ->
              Fault.disarm ();
              incr kills;
              let report = committed_report dir in
              check Alcotest.bool
                (Printf.sprintf "clean after kill at %d" budget)
                true
                (Load_report.is_clean report);
              if committed_bytes dir <> baseline then
                Alcotest.failf "snapshot bytes changed after kill at %d" budget;
              attempt (budget + 1)
          | Ok () -> Fault.disarm ()
          | Error msg ->
              Fault.disarm ();
              Alcotest.fail ("save: " ^ msg)
        in
        attempt 0;
        check Alcotest.bool "swept the whole save" true (!kills > 100);
        (* once the save finally commits, the NEW snapshot loads clean *)
        let members, report = load_exn dir in
        check Alcotest.bool "new snapshot clean" true
          (Load_report.is_clean report);
        check Alcotest.(option string) "new content in force"
          (Some "\x00\x01binary\xffpayloadappended-by-second-save\n")
          (Snapshot.find members "blob.bin"));
    Alcotest.test_case "kill between member writes and the manifest rename"
      `Quick (fun () ->
        let dir = fresh_dir "torn2" in
        save_exn dir test_members;
        save_exn dir altered_members;
        let baseline = committed_bytes dir in
        (* re-saving the same members costs exactly the committed bytes
           (stored members + manifest, whose generation field keeps its
           digit count) plus one unit for the commit rename. A budget
           one short of that means every member byte and every manifest
           byte is on disk; the commit rename itself is what dies. *)
        let manifest, files = baseline in
        let cost =
          String.length manifest
          + List.fold_left (fun a (_, c) -> a + String.length c) 0 files
          + 1
        in
        Fault.arm ~bytes:(cost - 1);
        (match Snapshot.save dir altered_members with
        | exception Fault.Killed -> Fault.disarm ()
        | Ok () ->
            Fault.disarm ();
            Alcotest.fail "save should have been killed at the commit"
        | Error msg ->
            Fault.disarm ();
            Alcotest.fail ("save: " ^ msg));
        check Alcotest.bool "manifest temp written in full" true
          (Sys.file_exists (Filename.concat dir "MANIFEST.aladin-tmp"));
        check Alcotest.bool "previous snapshot byte-identical" true
          (committed_bytes dir = baseline);
        (* the interrupted commit is cleaned up by the next save *)
        save_exn dir altered_members;
        check Alcotest.bool "temp swept" false
          (Sys.file_exists (Filename.concat dir "MANIFEST.aladin-tmp")));
    Alcotest.test_case "truncation at every offset of every member" `Slow
      (fun () ->
        let dir = fresh_dir "torn3" in
        save_exn dir test_members;
        let report = committed_report dir in
        List.iter
          (fun (m : Load_report.member) ->
            let path = stored_path dir report.generation m.path in
            let orig = read_file path in
            for cut = 0 to String.length orig - 1 do
              write_file path (Corrupt.truncate_at orig cut);
              match Snapshot.verify dir with
              | Ok r ->
                  if Load_report.is_clean r then
                    Alcotest.failf "%s truncated at %d passed verify" m.path
                      cut
              | Error msg ->
                  Alcotest.failf "%s truncated at %d: store-level error %s"
                    m.path cut msg
            done;
            write_file path orig)
          report.members;
        let report = committed_report dir in
        check Alcotest.bool "restored store verifies clean" true
          (Load_report.is_clean report));
  ]

(* --- warehouse-level durability ------------------------------------- *)

open Aladin
module Dump = Aladin_formats.Dump

let mini_catalogs () =
  [
    Dump.load ~name:"uniprot"
      [ ("entry", "acc,name\nP10001,alpha\nP10002,beta\nP10003,gamma\n") ];
    Dump.load ~name:"pdb"
      [ ("item", "id,acc,score\n1,P10001,0.5\n2,P10003,1.5\n") ];
  ]

let mini_warehouse () = Warehouse.integrate (mini_catalogs ())

let save_wh_exn w dir =
  match Warehouse.save_dir w dir with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("save_dir: " ^ msg)

let warehouse_store_tests =
  [
    Alcotest.test_case "save/load/save is byte-identical" `Quick (fun () ->
        let w = mini_warehouse () in
        let dir1 = fresh_dir "wbi1" and dir2 = fresh_dir "wbi2" in
        save_wh_exn w dir1;
        let w2, report = Warehouse.load_dir dir1 in
        check Alcotest.bool "clean" true (Load_report.is_clean report);
        save_wh_exn w2 dir2;
        let _, files1 = committed_bytes dir1 and _, files2 = committed_bytes dir2 in
        check Alcotest.int "same member count" (List.length files1)
          (List.length files2);
        List.iter2
          (fun (p1, c1) (p2, c2) ->
            check Alcotest.string "member path" p1 p2;
            check Alcotest.string ("bytes of " ^ p1) c1 c2)
          files1 files2);
    Alcotest.test_case "warehouse save killed mid-flight keeps snapshot 1"
      `Slow (fun () ->
        let w = mini_warehouse () in
        let dir = fresh_dir "wtorn" in
        save_wh_exn w dir;
        let baseline = committed_bytes dir in
        let kills = ref 0 in
        (* stride through the save's byte offsets; every kill must leave
           the first snapshot loadable byte-identically *)
        let rec attempt budget =
          Fault.arm ~bytes:budget;
          match Warehouse.save_dir w dir with
          | exception Fault.Killed ->
              Fault.disarm ();
              incr kills;
              if committed_bytes dir <> baseline then
                Alcotest.failf "snapshot changed after kill at %d" budget;
              let w2, report = Warehouse.load_dir dir in
              check Alcotest.bool
                (Printf.sprintf "clean load after kill at %d" budget)
                true
                (Load_report.is_clean report);
              check Alcotest.(list string) "sources intact"
                (Warehouse.sources w) (Warehouse.sources w2);
              attempt (budget + 61)
          | Ok () -> Fault.disarm ()
          | Error msg ->
              Fault.disarm ();
              Alcotest.fail ("save_dir: " ^ msg)
        in
        attempt 0;
        check Alcotest.bool "killed at least a few offsets" true (!kills >= 5));
    Alcotest.test_case "bit flip in the metadata member salvages on load"
      `Quick (fun () ->
        let w = mini_warehouse () in
        let dir = fresh_dir "wflip" in
        save_wh_exn w dir;
        let report = committed_report dir in
        let path = stored_path dir report.generation "metadata.txt" in
        let stored = read_file path in
        write_file path
          (Corrupt.flip_bit_at stored ~byte:(String.length stored - 4) ~bit:3);
        let w2, lreport = Warehouse.load_dir dir in
        check Alcotest.bool "load degraded" false
          (Load_report.is_clean lreport);
        (match Load_report.find lreport "metadata.txt" with
        | Some (Load_report.Salvaged n) ->
            check Alcotest.bool "records dropped" true (n >= 1)
        | _ -> Alcotest.fail "expected metadata.txt Salvaged");
        check Alcotest.(list string) "sources survive" (Warehouse.sources w)
          (Warehouse.sources w2));
    Alcotest.test_case "bit flip in a csv member drops only the torn row"
      `Quick (fun () ->
        let w = mini_warehouse () in
        let dir = fresh_dir "wcsv" in
        save_wh_exn w dir;
        let report = committed_report dir in
        let path = stored_path dir report.generation "uniprot/entry.csv" in
        let stored = read_file path in
        (* break the arity of the beta row by corrupting its comma *)
        let comma =
          let i = ref (-1) in
          String.iteri
            (fun j c ->
              if !i < 0 && c = ',' && j >= 6
                 && String.sub stored (j - 6) 6 = "P10002"
              then i := j)
            stored;
          !i
        in
        check Alcotest.bool "found the comma" true (comma > 0);
        write_file path (Corrupt.flip_bit_at stored ~byte:comma ~bit:0);
        let w2, lreport = Warehouse.load_dir dir in
        check Alcotest.bool "load degraded" false
          (Load_report.is_clean lreport);
        let n w =
          Aladin_relational.Relation.cardinality
            (Warehouse.sql w "SELECT * FROM uniprot.entry")
        in
        check Alcotest.int "one row lost" 2 (n w2);
        check Alcotest.(list string) "sources survive" (Warehouse.sources w)
          (Warehouse.sources w2));
  ]

(* --- the write-ahead integration journal (ISSUE 9) --- *)

let journal_create_exn dir ~meta =
  match Journal.create dir ~meta with
  | Ok j -> j
  | Error msg -> Alcotest.fail ("journal create: " ^ msg)

let journal_replay_exn dir =
  match Journal.replay dir with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("journal replay: " ^ msg)

let journal_resume_exn dir =
  match Journal.open_resume dir with
  | Ok jr -> jr
  | Error msg -> Alcotest.fail ("journal resume: " ^ msg)

let member path kind content = { Snapshot.path; kind; content }

let journal_size dir =
  let ic = open_in_bin (Filename.concat dir "JOURNAL") in
  let n = in_channel_length ic in
  close_in ic;
  n

let journal_tests =
  [
    Alcotest.test_case "create/intent/commit/replay roundtrip" `Quick
      (fun () ->
        let dir = fresh_dir "jrt" in
        let j = journal_create_exn dir ~meta:[ ("plan", "demo") ] in
        let seq = Journal.intent j ~step:"source:a" in
        check Alcotest.int "first seq" 0 seq;
        let c =
          Journal.commit j ~seq ~step:"source:a"
            ~info:[ ("quarantined", "0") ]
            [ member "metadata.txt" Snapshot.Records "k\tv\nline two\n";
              member "source/a.csv" Snapshot.Csv "acc,name\nP1,alpha\n" ]
        in
        check Alcotest.int "two artifacts" 2 (List.length c.artifacts);
        let r = journal_replay_exn dir in
        check
          Alcotest.(list (pair string string))
          "meta" [ ("plan", "demo") ] r.meta;
        check Alcotest.int "committed" 1 (List.length r.committed);
        check Alcotest.int "dropped" 0 r.dropped;
        check Alcotest.bool "no pending" true (r.pending = None);
        let c = List.hd r.committed in
        check Alcotest.string "step" "source:a" c.step;
        check
          Alcotest.(option string)
          "records member round-trips" (Some "k\tv\nline two\n")
          (Journal.read_artifact ~dir c "metadata.txt");
        check
          Alcotest.(option string)
          "csv member round-trips" (Some "acc,name\nP1,alpha\n")
          (Journal.read_artifact ~dir c "source/a.csv"));
    Alcotest.test_case "pending intent survives replay" `Quick (fun () ->
        let dir = fresh_dir "jpend" in
        let j = journal_create_exn dir ~meta:[] in
        ignore (Journal.intent j ~step:"source:a");
        let r = journal_replay_exn dir in
        check Alcotest.int "no commits" 0 (List.length r.committed);
        check Alcotest.bool "pending" true
          (r.pending = Some (0, "source:a")));
    Alcotest.test_case "create refuses an existing journal" `Quick (fun () ->
        let dir = fresh_dir "jdup" in
        ignore (journal_create_exn dir ~meta:[]);
        check Alcotest.bool "refused" true
          (Result.is_error (Journal.create dir ~meta:[])));
    Alcotest.test_case "create refuses '=' in meta keys" `Quick (fun () ->
        let dir = fresh_dir "jeq" in
        check Alcotest.bool "refused" true
          (Result.is_error (Journal.create dir ~meta:[ ("a=b", "v") ])));
    Alcotest.test_case "damaged artifact reads as None" `Quick (fun () ->
        let dir = fresh_dir "jdam" in
        let j = journal_create_exn dir ~meta:[] in
        let seq = Journal.intent j ~step:"source:a" in
        ignore
          (Journal.commit j ~seq ~step:"source:a"
             [ member "m.txt" Snapshot.Records "precious\n" ]);
        let r = journal_replay_exn dir in
        let c = List.hd r.committed in
        let path =
          Filename.concat dir
            (Filename.concat "steps"
               (Filename.concat
                  (Journal.step_dirname ~seq ~step:"source:a")
                  "m.txt"))
        in
        write_file path (Corrupt.flip_bit_at (read_file path) ~byte:3 ~bit:1);
        check
          Alcotest.(option string)
          "refused" None
          (Journal.read_artifact ~dir c "m.txt"));
    (* satellite: a torn trailing record — the append killed at EVERY
       byte offset — is dropped on replay, the committed prefix stays in
       force, and the truncated-on-resume journal accepts new commits *)
    Alcotest.test_case "torn trailing record: full byte sweep" `Slow
      (fun () ->
        let commit_a dir =
          let j = journal_create_exn dir ~meta:[ ("plan", "t") ] in
          let seq = Journal.intent j ~step:"source:a" in
          ignore
            (Journal.commit j ~seq ~step:"source:a"
               [ member "m.txt" Snapshot.Records "hello\n" ])
        in
        (* measure the appended intent record's length on a scratch dir *)
        let len =
          let dir = fresh_dir "jlen" in
          commit_a dir;
          let s0 = journal_size dir in
          let j, _ = journal_resume_exn dir in
          ignore (Journal.intent j ~step:"source:b");
          journal_size dir - s0
        in
        check Alcotest.bool "measurable record" true (len > 8);
        for k = 1 to len - 1 do
          let dir = fresh_dir "jtear" in
          commit_a dir;
          let j, _ = journal_resume_exn dir in
          Fault.arm ~bytes:k;
          (match Journal.intent j ~step:"source:b" with
          | _ -> Alcotest.fail "expected the armed fault to kill the append"
          | exception Fault.Killed -> ());
          Fault.disarm ();
          let r = journal_replay_exn dir in
          check Alcotest.int
            (Printf.sprintf "committed prefix intact at %d" k)
            1 (List.length r.committed);
          (* killed mid-line: the fragment fails its CRC and is dropped.
             Killed between the last payload byte and the terminator
             (k = len - 1): the fragment is a complete record and counts
             as the pending intent. *)
          (match (r.dropped, r.pending) with
          | 1, None -> ()
          | 0, Some (_, "source:b") -> ()
          | d, p ->
              Alcotest.fail
                (Printf.sprintf
                   "at %d: dropped=%d pending=%s (expected a dropped torn \
                    tail or a terminator-less pending intent)"
                   k d
                   (match p with
                   | Some (_, s) -> s
                   | None -> "none")));
          (* resume truncates the tail; the journal must accept and keep
             a fresh commit *)
          let j, r' = journal_resume_exn dir in
          check Alcotest.int "resume sees the prefix" 1
            (List.length r'.committed);
          let seq = Journal.intent j ~step:"source:b" in
          ignore
            (Journal.commit j ~seq ~step:"source:b"
               [ member "m.txt" Snapshot.Records "world\n" ]);
          let r'' = journal_replay_exn dir in
          check Alcotest.int
            (Printf.sprintf "both commits after heal at %d" k)
            2
            (List.length r''.committed);
          check Alcotest.int "no drops after heal" 0 r''.dropped
        done);
  ]

let tests =
  [
    ("store.crc32", crc_tests);
    ("store.records", records_tests);
    ("store.snapshot", snapshot_tests);
    ("store.torn-write", torn_write_tests);
    ("store.journal", journal_tests);
    ("store.warehouse", warehouse_store_tests);
  ]
