(* The domain pool: deterministic fan-out plus the pipeline-level
   guarantee that pool size never changes any discovery result. *)

module Pool = Aladin_par.Pool
module Obs = Aladin_obs
module Dg = Aladin_datagen
module Ds = Aladin_discovery
module Lk = Aladin_links

let check = Alcotest.check

let with_pool n f =
  let p = Pool.create ~domains:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let pool_tests =
  [
    Alcotest.test_case "parallel_map equals List.map at sizes 1/2/4" `Quick
      (fun () ->
        let xs = List.init 100 (fun i -> i - 50) in
        let f x = (x * x) + x in
        let expected = List.map f xs in
        List.iter
          (fun n ->
            with_pool n (fun p ->
                check
                  Alcotest.(list int)
                  (Printf.sprintf "size %d" n)
                  expected (Pool.parallel_map p f xs)))
          [ 1; 2; 4 ]);
    Alcotest.test_case "parallel_filter_map equals List.filter_map" `Quick
      (fun () ->
        let xs = List.init 60 Fun.id in
        let f x = if x mod 3 = 0 then Some (x * 2) else None in
        with_pool 4 (fun p ->
            check
              Alcotest.(list int)
              "filtered" (List.filter_map f xs)
              (Pool.parallel_filter_map p f xs)));
    Alcotest.test_case "empty and singleton inputs" `Quick (fun () ->
        with_pool 3 (fun p ->
            check Alcotest.(list int) "empty" [] (Pool.parallel_map p succ []);
            check Alcotest.(list int) "singleton" [ 8 ]
              (Pool.parallel_map p succ [ 7 ])));
    Alcotest.test_case "chunked claiming keeps input order on large batches"
      `Quick (fun () ->
        (* 1000 items at 2/4 domains claims runs of >1 item per cursor
           bump; assembly must still be by input index *)
        let xs = List.init 1000 (fun i -> i - 500) in
        let f x = (x * 7) - 3 in
        let expected = List.map f xs in
        List.iter
          (fun n ->
            with_pool n (fun p ->
                check
                  Alcotest.(list int)
                  (Printf.sprintf "size %d" n)
                  expected (Pool.parallel_map p f xs)))
          [ 2; 4 ]);
    Alcotest.test_case "expired budget enforced on singleton input" `Quick
      (fun () ->
        (* regression: the singleton shortcut used to run [f] without the
           Budget.check poll the sequential path performs *)
        let module Budget = Aladin_resilience.Budget in
        with_pool 2 (fun p ->
            match
              Budget.with_budget ~step:"single" 0.01 (fun () ->
                  (* spin until strictly past the deadline: remaining is
                     clamped at 0.0, so once it hits zero burn one more
                     clock tick — check () raises only on > *)
                  let rec spin () =
                    match Budget.remaining () with
                    | Some r when r > 0.0 -> spin ()
                    | _ ->
                        let t0 = Obs.Clock.now () in
                        while Obs.Clock.now () <= t0 do () done
                  in
                  spin ();
                  Pool.parallel_map p succ [ 1 ])
            with
            | _ -> Alcotest.fail "expected Budget.Expired"
            | exception Budget.Expired (step, _) ->
                check Alcotest.string "step" "single" step));
    Alcotest.test_case "exception propagates and the pool stays usable" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            (match
               Pool.parallel_map p
                 (fun x -> if x = 37 then failwith "boom" else x)
                 (List.init 80 Fun.id)
             with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> check Alcotest.string "msg" "boom" m);
            check
              Alcotest.(list int)
              "pool still works"
              (List.init 10 succ)
              (Pool.parallel_map p succ (List.init 10 Fun.id))));
    Alcotest.test_case "nested fan-out is rejected" `Quick (fun () ->
        with_pool 2 (fun p ->
            let inner_rejected =
              Pool.parallel_map p
                (fun _ ->
                  match Pool.parallel_map p Fun.id [ 1; 2; 3 ] with
                  | _ -> false
                  | exception Invalid_argument _ -> true)
                [ 1; 2; 3; 4 ]
            in
            check Alcotest.bool "all rejected" true
              (List.for_all Fun.id inner_rejected)));
    Alcotest.test_case "run_sequential is List.map; size reports domains"
      `Quick (fun () ->
        check Alcotest.(list int) "seq" [ 2; 3; 4 ]
          (Pool.run_sequential succ [ 1; 2; 3 ]);
        with_pool 3 (fun p -> check Alcotest.int "size" 3 (Pool.size p)));
    Alcotest.test_case "shutdown is idempotent and falls back to sequential"
      `Quick (fun () ->
        let p = Pool.create ~domains:2 () in
        Pool.shutdown p;
        Pool.shutdown p;
        check Alcotest.int "size after shutdown" 1 (Pool.size p);
        check
          Alcotest.(list int)
          "still maps" [ 1; 2 ]
          (Pool.parallel_map p succ [ 0; 1 ]));
    Alcotest.test_case "ambient counters/histograms merge exactly" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            let tr = Obs.Trace.create ~name:"par" () in
            let n = 57 in
            Obs.Trace.with_ambient tr (fun () ->
                Obs.Trace.with_span tr "fan" (fun () ->
                    ignore
                      (Pool.parallel_map p
                         (fun i ->
                           Obs.Trace.ambient_incr "par.items";
                           Obs.Trace.ambient_observe "par.cost"
                             (float_of_int i);
                           i)
                         (List.init n Fun.id))));
            check Alcotest.int "counter" n
              (Obs.Trace.counter_value tr "par.items");
            (match List.assoc_opt "par.cost" (Obs.Trace.histograms tr) with
            | Some h -> check Alcotest.int "histogram count" n (Obs.Histogram.count h)
            | None -> Alcotest.fail "par.cost histogram missing");
            match Obs.Trace.roots tr with
            | [ fan ] ->
                check Alcotest.(option string) "par.domains attr" (Some "4")
                  (List.assoc_opt "par.domains" (Obs.Span.attrs fan));
                check Alcotest.bool "has par.worker children" true
                  (List.exists
                     (fun sp -> Obs.Span.name sp = "par.worker")
                     (Obs.Span.children fan))
            | roots ->
                Alcotest.fail (Printf.sprintf "%d roots" (List.length roots))));
  ]

(* --- pipeline determinism: pool size must never change any result --- *)

let tiny_corpus_params =
  {
    Dg.Corpus.default_params with
    universe =
      {
        Dg.Universe.default_params with
        n_proteins = 20; n_genes = 8; n_structures = 8; n_diseases = 4;
        n_terms = 8; n_families = 4;
      };
  }

let pipeline_tests =
  [
    Alcotest.test_case "warehouse results identical at domains 1/2/4" `Slow
      (fun () ->
        let corpus = Dg.Corpus.generate tiny_corpus_params in
        let run domains =
          let tr = Obs.Trace.create ~name:"det" () in
          let w =
            Aladin.Warehouse.integrate
              ~config:{ Aladin.Config.default with domains }
              ~trace:tr corpus.catalogs
          in
          let links =
            List.map
              (Format.asprintf "%a" Lk.Link.pp)
              (Aladin.Warehouse.links w)
          in
          let fks =
            List.concat_map
              (fun (e : Lk.Profile_list.entry) ->
                List.map
                  (Format.asprintf "%a" Ds.Inclusion.pp_fk)
                  e.sp.Ds.Source_profile.fks)
              (Lk.Profile_list.entries (Aladin.Warehouse.profiles w))
          in
          let dups =
            match Aladin.Warehouse.duplicates w with
            | Some (r : Aladin_dup.Dup_detect.result) ->
                ( r.clusters,
                  List.map (Format.asprintf "%a" Lk.Link.pp) r.links )
            | None -> ([], [])
          in
          (links, fks, dups, Obs.Trace.counters tr)
        in
        let links1, fks1, dups1, counters1 = run 1 in
        check Alcotest.bool "baseline finds links" true (links1 <> []);
        List.iter
          (fun d ->
            let links, fks, dups, counters = run d in
            let lbl s = Printf.sprintf "%s at domains=%d" s d in
            check Alcotest.(list string) (lbl "links") links1 links;
            check Alcotest.(list string) (lbl "fks") fks1 fks;
            check
              Alcotest.(pair (list (list string)) (list string))
              (lbl "dups") dups1 dups;
            check
              Alcotest.(list (pair string int))
              (lbl "trace counters") counters1 counters)
          [ 2; 4 ]);
  ]

let tests =
  [ ("par.pool", pool_tests); ("par.pipeline", pipeline_tests) ]
