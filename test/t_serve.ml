(* lib/serve: HTTP wire layer, LRU+TTL cache, the service compute path
   (determinism across pool sizes, cache invalidation, deadlines) and the
   socket server (overload backpressure, graceful drain).

   Socket tests fork a sequential child server (no pool: a forked child
   must not touch domains spawned before the fork), so they exercise the
   protocol and admission paths; parallel-compute determinism is tested
   in-process with real pools. *)

open Aladin
module Serve = Aladin_serve
module Http = Serve.Http
module Pool = Aladin_par.Pool

let check = Alcotest.check

let req target =
  match Http.parse_request (Printf.sprintf "GET %s HTTP/1.1\r\n" target) with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

(* --- http --- *)

let http_tests =
  [
    Alcotest.test_case "request parsing and query decoding" `Quick (fun () ->
        let r = req "/search?q=dna+repair&limit=5&x=%2Fa%26b" in
        check Alcotest.string "path" "/search" r.path;
        check Alcotest.(option string) "q" (Some "dna repair")
          (Http.query_param r "q");
        check Alcotest.(option string) "limit" (Some "5")
          (Http.query_param r "limit");
        check Alcotest.(option string) "decoded" (Some "/a&b")
          (Http.query_param r "x"));
    Alcotest.test_case "normalize_target sorts parameters" `Quick (fun () ->
        let a = req "/search?q=kinase&limit=5" in
        let b = req "/search?limit=5&q=kinase" in
        check Alcotest.string "equal keys" (Http.normalize_target a)
          (Http.normalize_target b);
        check Alcotest.bool "differs from other query" true
          (Http.normalize_target a <> Http.normalize_target (req "/search?q=x")));
    Alcotest.test_case "malformed request line rejected" `Quick (fun () ->
        (match Http.parse_request "NONSENSE\r\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "parsed nonsense");
        match Http.parse_request "GET /x SMTP/1.0\r\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "parsed non-http version");
    Alcotest.test_case "response render / parse round-trip" `Quick (fun () ->
        let resp =
          Http.response 200 ~content_type:"application/json"
            ~headers:[ ("x-cache", "hit") ]
            "{\"a\":1}\n"
        in
        match Http.parse_response (Http.render resp) with
        | Error msg -> Alcotest.fail msg
        | Ok back ->
            check Alcotest.int "status" 200 back.status;
            check Alcotest.string "body" "{\"a\":1}\n" back.body;
            check Alcotest.(option string) "x-cache" (Some "hit")
              (List.assoc_opt "x-cache" back.headers);
            check Alcotest.(option string) "content-length"
              (Some (string_of_int (String.length back.body)))
              (List.assoc_opt "content-length" back.headers));
    Alcotest.test_case "json_string escapes" `Quick (fun () ->
        check Alcotest.string "escaped" "\"a\\\"b\\\\c\\nd\""
          (Http.json_string "a\"b\\c\nd"));
  ]

(* --- cache --- *)

let cache_tests =
  [
    Alcotest.test_case "lru evicts least recently used" `Quick (fun () ->
        let c = Serve.Cache.create ~capacity:2 ~ttl:0.0 () in
        Serve.Cache.add c "a" 1;
        Serve.Cache.add c "b" 2;
        (* touch a so b becomes the LRU entry *)
        check Alcotest.(option int) "a hit" (Some 1) (Serve.Cache.find c "a");
        Serve.Cache.add c "c" 3;
        check Alcotest.(option int) "b evicted" None (Serve.Cache.find c "b");
        check Alcotest.(option int) "a kept" (Some 1) (Serve.Cache.find c "a");
        check Alcotest.(option int) "c kept" (Some 3) (Serve.Cache.find c "c");
        let s = Serve.Cache.stats c in
        check Alcotest.int "evictions" 1 s.evictions;
        check Alcotest.int "size" 2 s.size);
    Alcotest.test_case "ttl expires entries" `Quick (fun () ->
        let c = Serve.Cache.create ~capacity:8 ~ttl:0.02 () in
        Serve.Cache.add c "k" 1;
        check Alcotest.(option int) "fresh" (Some 1) (Serve.Cache.find c "k");
        Unix.sleepf 0.03;
        check Alcotest.(option int) "expired" None (Serve.Cache.find c "k");
        check Alcotest.int "expirations" 1 (Serve.Cache.stats c).expirations);
    Alcotest.test_case "capacity 0 disables" `Quick (fun () ->
        let c = Serve.Cache.create ~capacity:0 ~ttl:0.0 () in
        Serve.Cache.add c "k" 1;
        check Alcotest.(option int) "nothing stored" None (Serve.Cache.find c "k"));
    Alcotest.test_case "flush drops everything once" `Quick (fun () ->
        let c = Serve.Cache.create ~capacity:8 ~ttl:0.0 () in
        Serve.Cache.add c "k" 1;
        Serve.Cache.flush c;
        Serve.Cache.flush c;
        check Alcotest.(option int) "gone" None (Serve.Cache.find c "k");
        check Alcotest.int "one flush counted" 1 (Serve.Cache.stats c).flushes);
  ]

(* --- service --- *)

let small_corpus =
  lazy
    (Aladin_datagen.Corpus.generate
       {
         Aladin_datagen.Corpus.default_params with
         universe =
           { Aladin_datagen.Universe.default_params with n_proteins = 24;
             n_genes = 10; n_structures = 8; n_diseases = 4; n_terms = 8;
             n_families = 3 };
       })

let engine = lazy (Engine.integrate (Lazy.force small_corpus).catalogs)

let batch_targets =
  [
    "/search?q=protein";
    "/search?q=repair&limit=4";
    "/search?q=protein&source=uniprot";
    "/query?sql=SELECT%20*%20FROM%20uniprot.entry";
    "/links?kind=xref";
    "/healthz";
  ]

let run_batch ~domains =
  let pool = Pool.create ~domains () in
  let service = Serve.Service.create ~pool (Lazy.force engine) in
  let resps = Serve.Service.handle_batch service (List.map req batch_targets) in
  List.map (fun (r : Http.response) -> (r.status, r.body)) resps

let service_tests =
  [
    Alcotest.test_case "responses byte-identical at 1/2/4 domains" `Quick
      (fun () ->
        let one = run_batch ~domains:1 in
        check Alcotest.bool "all 200" true (List.for_all (fun (s, _) -> s = 200) one);
        List.iter
          (fun domains ->
            let other = run_batch ~domains in
            List.iteri
              (fun i (s, body) ->
                let s1, body1 = List.nth one i in
                check Alcotest.int (Printf.sprintf "status %d @%d" i domains) s1 s;
                check Alcotest.string
                  (Printf.sprintf "body %d @%d" i domains)
                  body1 body)
              other)
          [ 2; 4 ]);
    Alcotest.test_case "cached repeat is byte-identical, hit-flagged" `Quick
      (fun () ->
        let service = Serve.Service.create (Lazy.force engine) in
        let r = req "/search?q=protein" in
        let first = Serve.Service.handle service r in
        let second = Serve.Service.handle service r in
        check Alcotest.(option string) "first miss" (Some "miss")
          (List.assoc_opt "x-cache" first.headers);
        check Alcotest.(option string) "second hit" (Some "hit")
          (List.assoc_opt "x-cache" second.headers);
        check Alcotest.string "same body" first.body second.body;
        (* normalized target: parameter order does not defeat the cache *)
        let third = Serve.Service.handle service (req "/search?limit=10&q=protein") in
        let fourth = Serve.Service.handle service (req "/search?q=protein&limit=10") in
        check Alcotest.(option string) "miss on new target" (Some "miss")
          (List.assoc_opt "x-cache" third.headers);
        check Alcotest.(option string) "hit via normalization" (Some "hit")
          (List.assoc_opt "x-cache" fourth.headers));
    Alcotest.test_case "update_source invalidates via typed key" `Quick
      (fun () ->
        (* private engine: this test mutates it *)
        let corpus = Lazy.force small_corpus in
        let eng = Engine.integrate corpus.catalogs in
        let service = Serve.Service.create eng in
        let r = req "/search?q=protein" in
        ignore (Serve.Service.handle service r);
        let hit = Serve.Service.handle service r in
        check Alcotest.(option string) "cached before update" (Some "hit")
          (List.assoc_opt "x-cache" hit.headers);
        let cat = List.hd corpus.catalogs in
        let epoch0 = Engine.epoch eng in
        let upd =
          Engine.update_source eng cat
            ~changed_rows:(Aladin_relational.Catalog.total_rows cat)
        in
        (match upd.Aladin.Warehouse.outcome with
        | `Reanalyzed _ -> ()
        | `Deferred -> Alcotest.fail "full-source change was deferred");
        check Alcotest.bool "epoch bumped" true (Engine.epoch eng > epoch0);
        let after = Serve.Service.handle service r in
        check Alcotest.(option string) "miss after update" (Some "miss")
          (List.assoc_opt "x-cache" after.headers);
        check Alcotest.string "same answer after reanalysis" hit.body after.body);
    Alcotest.test_case "warm cache survives unrelated-source update" `Quick
      (fun () ->
        (* a /query over uniprot keys on [Source "uniprot"] only: an
           update of pdb must leave its cached entry serving hits, while
           an update of uniprot itself must orphan it *)
        let corpus = Lazy.force small_corpus in
        let eng = Engine.integrate corpus.catalogs in
        let service = Serve.Service.create eng in
        let find_cat name =
          List.find
            (fun c -> Aladin_relational.Catalog.name c = name)
            corpus.catalogs
        in
        let update name =
          let cat = find_cat name in
          let upd =
            Engine.update_source eng cat
              ~changed_rows:(Aladin_relational.Catalog.total_rows cat)
          in
          match upd.Aladin.Warehouse.outcome with
          | `Reanalyzed _ -> ()
          | `Deferred -> Alcotest.fail (name ^ " update was deferred")
        in
        let r = req "/query?sql=SELECT%20*%20FROM%20uniprot.entry" in
        let first = Serve.Service.handle service r in
        check Alcotest.int "query ok" 200 first.status;
        update "pdb";
        let warm = Serve.Service.handle service r in
        check Alcotest.(option string) "hit across unrelated update"
          (Some "hit")
          (List.assoc_opt "x-cache" warm.headers);
        check Alcotest.string "same body across unrelated update" first.body
          warm.body;
        update "uniprot";
        let cold = Serve.Service.handle service r in
        check Alcotest.(option string) "miss after own-source update"
          (Some "miss")
          (List.assoc_opt "x-cache" cold.headers);
        check Alcotest.string "same body after own-source reanalysis"
          first.body cold.body);
    Alcotest.test_case "request budget maps to 503 with retry-after" `Quick
      (fun () ->
        let service =
          Serve.Service.create
            ~config:
              {
                Serve.Service.default_config with
                request_budget = Some 0.05;
                debug_endpoints = true;
              }
            (Lazy.force engine)
        in
        let resp = Serve.Service.handle service (req "/slow?seconds=5") in
        check Alcotest.int "503" 503 resp.status;
        check Alcotest.(option string) "retry-after" (Some "1")
          (List.assoc_opt "retry-after" resp.headers));
    Alcotest.test_case "slow endpoint hidden without debug" `Quick (fun () ->
        let service = Serve.Service.create (Lazy.force engine) in
        check Alcotest.int "404" 404
          (Serve.Service.handle service (req "/slow?seconds=0")).status);
    Alcotest.test_case "metrics text lists routes and cache counters" `Quick
      (fun () ->
        let service = Serve.Service.create (Lazy.force engine) in
        ignore (Serve.Service.handle service (req "/search?q=protein"));
        ignore (Serve.Service.handle service (req "/search?q=protein"));
        let m = Serve.Service.metrics_text ~extra:[ ("x_gauge", 7.0) ] service in
        let has needle =
          let nl = String.length needle and ml = String.length m in
          let rec go i =
            i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (has needle))
          [
            "aladin_cache_hits_total 1";
            "aladin_cache_misses_total 1";
            "aladin_requests_total{route=\"search\"} 2";
            "aladin_request_seconds_count{route=\"search\"} 1";
            "x_gauge 7.0";
          ]);
  ]

(* --- socket server --- *)

(* The server runs in a thread of this process (OCaml 5 forbids fork once
   domains exist, and earlier suites have spawned pool domains). Drain is
   triggered through the external [stop] flag — the SIGTERM handler sets
   the very same flag, and the signal path itself is covered by the
   scripts/check.sh smoke test. Returns the server's final stats. *)
let with_server ?(max_queue = 16) ?(request_budget = Some 5.0) f =
  let service =
    Serve.Service.create
      ~config:
        { Serve.Service.default_config with request_budget;
          debug_endpoints = true }
      (Lazy.force engine)
  in
  let stop = Atomic.make false in
  let port_box = Atomic.make 0 in
  let stats = ref None in
  let th =
    Thread.create
      (fun () ->
        let cfg = { Serve.Server.default_config with port = 0; max_queue } in
        stats :=
          Some
            (Serve.Server.run ~config:cfg ~stop
               ~on_ready:(fun p -> Atomic.set port_box p)
               service))
      ()
  in
  let rec wait_port n =
    match Atomic.get port_box with
    | 0 when n < 1000 ->
        Thread.delay 0.01;
        wait_port (n + 1)
    | 0 -> Alcotest.fail "server did not start"
    | p -> p
  in
  let port = wait_port 0 in
  let finally () =
    Atomic.set stop true;
    Thread.join th
  in
  Fun.protect ~finally (fun () -> f ~port ~stop);
  match !stats with
  | Some s -> s
  | None -> Alcotest.fail "server returned no stats"

(* a raw connection we control precisely: send now, read later *)
let open_conn port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let s = Printf.sprintf "GET %s HTTP/1.1\r\nconnection: close\r\n\r\n" target in
  ignore (Unix.write_substring fd s 0 (String.length s));
  fd

let read_resp fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  (try
     let rec go () =
       match Unix.read fd chunk 0 1024 with
       | 0 -> ()
       | k ->
           Buffer.add_subbytes buf chunk 0 k;
           go ()
     in
     go ()
   with Unix.Unix_error _ -> ());
  Unix.close fd;
  match Http.parse_response (Buffer.contents buf) with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("unparsable response: " ^ msg)

let server_tests =
  [
    Alcotest.test_case "end-to-end over a socket" `Quick (fun () ->
        let stats =
          with_server (fun ~port ~stop:_ ->
              (match Serve.Client.get ~port "/healthz" with
              | Ok r ->
                  check Alcotest.int "healthz 200" 200 r.status;
                  check Alcotest.string "healthz body" "ok\n" r.body
              | Error msg -> Alcotest.fail msg);
              match Serve.Client.get ~port "/search?q=protein" with
              | Ok r ->
                  check Alcotest.int "search 200" 200 r.status;
                  check Alcotest.bool "json body" true
                    (String.length r.body > 2 && r.body.[0] = '{')
              | Error msg -> Alcotest.fail msg)
        in
        check Alcotest.int "one batched request" 1 stats.served;
        check Alcotest.int "healthz inline" 1 stats.inline_served);
    Alcotest.test_case "overload rejects with 503, in-flight unharmed" `Quick
      (fun () ->
        let stats =
          with_server ~max_queue:1 (fun ~port ~stop:_ ->
              (* occupy the server with one slow batch... *)
              let slow = open_conn port "/slow?seconds=1.0" in
              Unix.sleepf 0.35;
              (* ...pile connections up behind it; the next accept burst
                 admits one and must 503 the rest before any compute *)
              let others =
                List.init 4 (fun _ -> open_conn port "/slow?seconds=0")
              in
              let slow_resp = read_resp slow in
              let resps = List.map read_resp others in
              check Alcotest.int "slow request served in full" 200
                slow_resp.status;
              check Alcotest.string "slow body intact" "slept 1.000s\n"
                slow_resp.body;
              let ok, busy =
                List.partition (fun (r : Http.response) -> r.status = 200) resps
              in
              check Alcotest.int "one admitted" 1 (List.length ok);
              check Alcotest.int "three rejected" 3 (List.length busy);
              List.iter
                (fun (r : Http.response) ->
                  check Alcotest.int "503" 503 r.status;
                  check Alcotest.(option string) "retry-after" (Some "1")
                    (List.assoc_opt "retry-after" r.headers))
                busy)
        in
        check Alcotest.int "rejections counted" 3 stats.rejected;
        check Alcotest.int "no write errors" 0 stats.write_errors);
    Alcotest.test_case "graceful drain finishes admitted work" `Quick (fun () ->
        let stats =
          with_server (fun ~port ~stop ->
              let c = open_conn port "/slow?seconds=0.4" in
              Unix.sleepf 0.15;
              (* the request is mid-batch: draining must not cut it off *)
              Atomic.set stop true;
              let resp = read_resp c in
              check Alcotest.int "drained response status" 200 resp.status;
              check Alcotest.string "drained response body" "slept 0.400s\n"
                resp.body)
        in
        check Alcotest.int "admitted request served through drain" 1
          stats.served);
  ]

let tests =
  [
    ("serve.http", http_tests);
    ("serve.cache", cache_tests);
    ("serve.service", service_tests);
    ("serve.server", server_tests);
  ]
