open Aladin_links
open Aladin_dup

let check = Alcotest.check

let union_find_tests =
  [
    Alcotest.test_case "basic union" `Quick (fun () ->
        let uf = Union_find.create () in
        Union_find.union uf "a" "b";
        Union_find.union uf "b" "c";
        check Alcotest.bool "a~c" true (Union_find.connected uf "a" "c");
        check Alcotest.bool "a!~d" false (Union_find.connected uf "a" "d"));
    Alcotest.test_case "clusters min size 2" `Quick (fun () ->
        let uf = Union_find.create () in
        Union_find.add uf "lonely";
        Union_find.union uf "a" "b";
        check Alcotest.(list (list string)) "one cluster" [ [ "a"; "b" ] ]
          (Union_find.clusters uf));
    Alcotest.test_case "find idempotent on fresh" `Quick (fun () ->
        let uf = Union_find.create () in
        check Alcotest.string "self" "x" (Union_find.find uf "x"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union is equivalence" ~count:50
         QCheck.(list (pair (int_bound 10) (int_bound 10)))
         (fun pairs ->
           let uf = Union_find.create () in
           List.iter
             (fun (a, b) ->
               Union_find.union uf (string_of_int a) (string_of_int b))
             pairs;
           (* symmetric + transitive closure: connected is an equivalence *)
           List.for_all
             (fun (a, b) ->
               Union_find.connected uf (string_of_int a) (string_of_int b)
               && Union_find.connected uf (string_of_int b) (string_of_int a))
             pairs));
  ]

let field_sim_tests =
  [
    Alcotest.test_case "metric choice" `Quick (fun () ->
        check Alcotest.bool "exact" true (Field_sim.choose_metric "abc" "abc" = Field_sim.Exact);
        check Alcotest.bool "edit for short" true
          (Field_sim.choose_metric "abc" "abd" = Field_sim.Edit);
        check Alcotest.bool "token for long" true
          (Field_sim.choose_metric (String.make 30 'x' ^ " words here") "other long text entirely"
          = Field_sim.Token));
    Alcotest.test_case "sequence metric" `Quick (fun () ->
        let s1 = String.concat "" (List.init 3 (fun _ -> "ACGTACGTACGT")) in
        let s2 = String.concat "" (List.init 3 (fun _ -> "ACGTACCTACGT")) in
        check Alcotest.bool "seq" true
          (Field_sim.choose_metric s1 s2 = Field_sim.Sequence_metric);
        check Alcotest.bool "high" true (Field_sim.similarity s1 s2 > 0.7));
    Alcotest.test_case "similarity bounds" `Quick (fun () ->
        check (Alcotest.float 0.001) "both empty" 1.0 (Field_sim.similarity "" "");
        check (Alcotest.float 0.001) "one empty" 0.0 (Field_sim.similarity "" "x");
        check (Alcotest.float 0.001) "case-insensitive exact" 1.0
          (Field_sim.similarity "AbC" "abc"));
    Alcotest.test_case "name_affinity" `Quick (fun () ->
        check Alcotest.bool "desc vs desc" true
          (Field_sim.name_affinity "entry.description" "prot.description" > 0.0);
        check (Alcotest.float 0.001) "unrelated" 0.0
          (Field_sim.name_affinity "entry.name" "prot.sequence"));
    Alcotest.test_case "name_affinity dedups tokens (true Jaccard)" `Quick
      (fun () ->
        (* the repeated token must not inflate the intersection past the
           union: the multiset version scored this 2.0 *)
        check (Alcotest.float 0.001) "gene_gene vs gene" 1.0
          (Field_sim.name_affinity "gene_gene" "gene");
        check (Alcotest.float 0.001) "partial overlap" 0.5
          (Field_sim.name_affinity "locus_locus_tag" "locus");
        check Alcotest.bool "never exceeds 1" true
          (List.for_all
             (fun (a, b) -> Field_sim.name_affinity a b <= 1.0)
             [ ("gene_gene", "gene"); ("a_a_b_b", "a_b"); ("x.x", "x_x_x") ]));
    Alcotest.test_case "prepared similarity equals unprepared" `Quick (fun () ->
        let vals =
          [ ""; "  "; "BRCA1"; "brca1 "; "Homo sapiens"; "ACGTACGTACGTACGTACGT";
            "a long description of a protein that repairs dna in cells";
            "P11140"; "p11140" ]
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check (Alcotest.float 1e-9)
                  (Printf.sprintf "%S ~ %S" a b)
                  (Field_sim.similarity a b)
                  (Field_sim.similarity_prepared (Field_sim.prepare a)
                     (Field_sim.prepare b)))
              vals)
          vals);
  ]

let repr obj_acc source fields =
  { Object_sim.obj = Objref.make ~source ~relation:"r" ~accession:obj_acc; fields }

let object_sim_tests =
  [
    Alcotest.test_case "identical objects near 1" `Quick (fun () ->
        let fields = [ ("r.name", "BRCA2X"); ("r.desc", "repairs the DNA") ] in
        let s = Object_sim.similarity (repr "A" "s1" fields) (repr "B" "s2" fields) in
        check Alcotest.bool "high" true (s > 0.85));
    Alcotest.test_case "disjoint objects low" `Quick (fun () ->
        let a = repr "A" "s1" [ ("r.name", "AAAB1"); ("r.desc", "mmm nnn ooo") ] in
        let b = repr "B" "s2" [ ("r.name", "ZZZY9"); ("r.desc", "qqq rrr sss") ] in
        check Alcotest.bool "low" true (Object_sim.similarity a b < 0.5));
    Alcotest.test_case "empty fields zero" `Quick (fun () ->
        let a = repr "A" "s1" [] and b = repr "B" "s2" [ ("r.x", "v") ] in
        check (Alcotest.float 0.001) "zero" 0.0 (Object_sim.similarity a b));
    Alcotest.test_case "context downweights common values" `Quick (fun () ->
        (* many objects share "Homo sapiens"; two also share a rare name *)
        let common i =
          repr (Printf.sprintf "C%d" i) "s1"
            [ ("r.org", "Homo sapiens"); ("r.name", Printf.sprintf "NAME%04d" i) ]
        in
        let a = repr "A" "s1" [ ("r.org", "Homo sapiens"); ("r.name", "RARE77") ] in
        let b = repr "B" "s2" [ ("r.org", "Homo sapiens"); ("r.name", "RARE77") ] in
        let c = repr "C" "s2" [ ("r.org", "Homo sapiens"); ("r.name", "OTHER88") ] in
        let reprs = a :: b :: c :: List.init 20 common in
        let ctx = Object_sim.context_of reprs in
        let dup_score = Object_sim.similarity ~context:ctx a b in
        let nondup_score = Object_sim.similarity ~context:ctx a c in
        check Alcotest.bool "dup higher" true (dup_score > nondup_score +. 0.2));
    Alcotest.test_case "explain mentions anchor and score" `Quick (fun () ->
        let fields = [ ("r.name", "BRCA2X"); ("r.desc", "repairs the DNA today") ] in
        let a = repr "A" "s1" fields and b = repr "B" "s2" fields in
        let ctx = Object_sim.context_of [ a; b ] in
        let text = Object_sim.explain ~context:ctx a b in
        check Alcotest.bool "anchor shown" true
          (Aladin_text.Strdist.contains ~needle:"ANCHOR" text);
        check Alcotest.bool "score line" true
          (Aladin_text.Strdist.contains ~needle:"similarity =" text));
    Alcotest.test_case "categorical low-df value cannot anchor" `Quick (fun () ->
        (* "bluex" is rare but has no digit and is short: not identifying *)
        let a = repr "A" "s1" [ ("r.color", "bluex") ] in
        let b = repr "B" "s2" [ ("r.color", "bluex") ] in
        let ctx = Object_sim.context_of [ a; b ] in
        check Alcotest.bool "halved" true (Object_sim.similarity ~context:ctx a b < 0.6));
    Alcotest.test_case "field_matches aligned" `Quick (fun () ->
        let a = repr "A" "s1" [ ("r.name", "XYZ1") ] in
        let b = repr "B" "s2" [ ("q.other", "zzz"); ("q.name", "XYZ1") ] in
        match Object_sim.field_matches a b with
        | [ (_, va, _, vb, vs) ] ->
            check Alcotest.string "left" "XYZ1" va;
            check Alcotest.string "right" "XYZ1" vb;
            check (Alcotest.float 0.001) "exact" 1.0 vs
        | ms -> Alcotest.fail (Printf.sprintf "%d matches" (List.length ms)));
  ]

(* reprs of planted duplicates across two pseudo-sources *)
let planted_reprs () =
  let words =
    [| "ALPHA"; "BRAVO"; "CHARLIE"; "DELTA"; "ECHO"; "FOXTROT"; "GOLF";
       "HOTEL"; "INDIA"; "JULIET" |]
  in
  let mk source i extra =
    repr
      (Printf.sprintf "%s%03d" (String.uppercase_ascii source) i)
      source
      ([ ("p.name", Printf.sprintf "%s%d" words.(i) i);
         ("p.desc",
          Printf.sprintf "the %s protein number %d does thing %d"
            (String.lowercase_ascii words.(i)) i (i * 7)) ]
      @ extra)
  in
  let s1 = List.init 10 (fun i -> mk "left" i [ ("p.org", "Homo sapiens") ]) in
  let s2 = List.init 10 (fun i -> mk "right" i [ ("p.species", "Homo sapiens") ]) in
  s1 @ s2

let dup_detect_tests =
  [
    Alcotest.test_case "planted duplicates found" `Quick (fun () ->
        let r = Dup_detect.detect_on (planted_reprs ()) in
        check Alcotest.int "ten pairs" 10 (List.length r.links);
        check Alcotest.int "ten clusters" 10 (List.length r.clusters));
    Alcotest.test_case "higher threshold fewer links" `Quick (fun () ->
        let reprs = planted_reprs () in
        let lo =
          Dup_detect.detect_on
            ~params:{ Dup_detect.default_params with min_similarity = 0.5 }
            reprs
        in
        let hi =
          Dup_detect.detect_on
            ~params:{ Dup_detect.default_params with min_similarity = 0.99 }
            reprs
        in
        check Alcotest.bool "monotone" true
          (List.length hi.links <= List.length lo.links));
    Alcotest.test_case "blocking vs all_pairs same recall here" `Quick (fun () ->
        let reprs = planted_reprs () in
        let blocked = Dup_detect.detect_on reprs in
        let full =
          Dup_detect.detect_on
            ~params:{ Dup_detect.default_params with all_pairs = true }
            reprs
        in
        check Alcotest.int "same" (List.length full.links) (List.length blocked.links);
        check Alcotest.bool "blocking cheaper" true
          (blocked.candidates_checked <= full.candidates_checked));
    Alcotest.test_case "same-source pairs never candidates" `Quick (fun () ->
        let r = Dup_detect.detect_on (planted_reprs ()) in
        check Alcotest.bool "cross only" true
          (List.for_all
             (fun (l : Link.t) -> l.src.Objref.source <> l.dst.Objref.source)
             r.links));
    Alcotest.test_case "links carry Duplicate kind" `Quick (fun () ->
        let r = Dup_detect.detect_on (planted_reprs ()) in
        check Alcotest.bool "kind" true
          (List.for_all (fun (l : Link.t) -> l.kind = Link.Duplicate) r.links));
    Alcotest.test_case "blocking is case-insensitive" `Quick (fun () ->
        (* regression: "BRCA1" and "brca1" must land in the same block, so
           the mixed-case duplicate pair is actually considered *)
        let a = repr "A" "s1" [ ("r.name", "BRCA1") ] in
        let b = repr "B" "s2" [ ("r.name", "brca1") ] in
        let shared =
          List.filter
            (fun k -> List.mem k (Dup_detect.blocking_keys b))
            (Dup_detect.blocking_keys a)
        in
        check Alcotest.bool "share a block" true (shared <> []);
        check Alcotest.int "pair considered" 1
          (List.length (Dup_detect.candidate_pairs Dup_detect.default_params
                          [ a; b ]));
        (* same for multi-word values that go through the token keys *)
        let c = repr "C" "s1" [ ("r.desc", "Alpha KINASE protein") ] in
        let d = repr "D" "s2" [ ("r.desc", "alpha kinase PROTEIN") ] in
        check Alcotest.bool "token blocks shared" true
          (List.exists
             (fun k -> List.mem k (Dup_detect.blocking_keys d))
             (Dup_detect.blocking_keys c)));
    Alcotest.test_case "detect_on identical at pool sizes 1/2/4" `Quick
      (fun () ->
        let reprs = planted_reprs () in
        let norm (r : Dup_detect.result) =
          ( List.map (Format.asprintf "%a" Link.pp) r.links,
            r.clusters,
            r.candidates_checked )
        in
        let base = norm (Dup_detect.detect_on reprs) in
        List.iter
          (fun domains ->
            let p = Aladin_par.Pool.create ~domains () in
            Fun.protect
              ~finally:(fun () -> Aladin_par.Pool.shutdown p)
              (fun () ->
                check
                  Alcotest.(triple (list string) (list (list string)) int)
                  (Printf.sprintf "domains=%d" domains)
                  base
                  (norm (Dup_detect.detect_on ~pool:p reprs))))
          [ 1; 2; 4 ]);
  ]

(* build_reprs over a real profiled source: the field cap must hold *)
let build_reprs_tests =
  let open Aladin_relational in
  let source () =
    let cat = Catalog.create ~name:"caps" in
    let entry =
      Catalog.create_relation cat ~name:"entry"
        (Schema.of_names
           [ "entry_id"; "accession"; "c1"; "c2"; "c3"; "c4"; "c5"; "c6" ])
    in
    List.iteri
      (fun i acc ->
        Relation.insert entry
          (Array.append
             [| Value.Int (i + 1); Value.text acc |]
             (Array.init 6 (fun j ->
                  Value.text (Printf.sprintf "text value %d-%d ok" i j)))))
      [ "CP001"; "CP002"; "CP003" ];
    cat
  in
  let profiles () =
    Profile_list.of_profiles
      [ Aladin_discovery.Source_profile.analyze (source ()) ]
  in
  [
    Alcotest.test_case "max_fields_per_object is respected" `Quick (fun () ->
        let reprs =
          Object_sim.build_reprs ~max_fields_per_object:3 (profiles ())
        in
        check Alcotest.bool "some reprs" true (reprs <> []);
        List.iter
          (fun (r : Object_sim.repr) ->
            check Alcotest.bool
              (Objref.to_string r.obj ^ " capped")
              true
              (List.length r.fields <= 3))
          reprs);
    Alcotest.test_case "uncapped keeps every content field" `Quick (fun () ->
        let reprs = Object_sim.build_reprs (profiles ()) in
        check Alcotest.bool "wider than the cap of 3" true
          (List.exists
             (fun (r : Object_sim.repr) -> List.length r.fields > 3)
             reprs));
  ]

let conflict_tests =
  [
    Alcotest.test_case "disagreeing matched field flagged" `Quick (fun () ->
        let a = repr "A" "s1" [ ("p.length", "431") ] in
        let b = repr "B" "s2" [ ("q.length", "497") ] in
        match Conflict.between a b with
        | [ c ] ->
            check Alcotest.string "va" "431" c.value_a;
            check Alcotest.string "vb" "497" c.value_b
        | cs -> Alcotest.fail (Printf.sprintf "%d conflicts" (List.length cs)));
    Alcotest.test_case "agreeing fields not flagged" `Quick (fun () ->
        let a = repr "A" "s1" [ ("p.name", "SAME1") ] in
        let b = repr "B" "s2" [ ("q.name", "SAME1") ] in
        check Alcotest.int "none" 0 (List.length (Conflict.between a b)));
    Alcotest.test_case "unrelated attribute names not compared" `Quick (fun () ->
        let a = repr "A" "s1" [ ("p.organism", "mouse") ] in
        let b = repr "B" "s2" [ ("q.sequence", "ACGT") ] in
        check Alcotest.int "none" 0 (List.length (Conflict.between a b)));
    Alcotest.test_case "in_duplicates scoped to links" `Quick (fun () ->
        let a = repr "A" "s1" [ ("p.len", "10") ] in
        let b = repr "B" "s2" [ ("q.len", "99") ] in
        let link =
          Link.make ~src:a.Object_sim.obj ~dst:b.Object_sim.obj
            ~kind:Link.Duplicate ~confidence:0.9 ~evidence:"t"
        in
        check Alcotest.int "one conflict" 1
          (List.length (Conflict.in_duplicates [ a; b ] [ link ]));
        let xref = { link with kind = Link.Xref } in
        check Alcotest.int "xref ignored" 0
          (List.length (Conflict.in_duplicates [ a; b ] [ xref ])));
  ]

let tests =
  [
    ("dupdetect.union_find", union_find_tests);
    ("dupdetect.field_sim", field_sim_tests);
    ("dupdetect.object_sim", object_sim_tests);
    ("dupdetect.build_reprs", build_reprs_tests);
    ("dupdetect.dup_detect", dup_detect_tests);
    ("dupdetect.conflict", conflict_tests);
  ]
