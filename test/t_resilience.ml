(* The resilience subsystem and its integration into the pipeline:
   budgets, error boundaries, typed run reports, quarantine. *)

open Aladin
open Aladin_resilience

let check = Alcotest.check

let small_corpus =
  lazy
    (Aladin_datagen.Corpus.generate
       {
         Aladin_datagen.Corpus.default_params with
         universe =
           { Aladin_datagen.Universe.default_params with n_proteins = 20;
             n_genes = 8; n_structures = 6; n_diseases = 3; n_terms = 6;
             n_families = 3 };
       })

let budget_tests =
  [
    Alcotest.test_case "active inside, cleared outside" `Quick (fun () ->
        check Alcotest.(option string) "outside" None (Budget.active ());
        let inside =
          Budget.with_budget ~step:"s" 60.0 (fun () -> Budget.active ())
        in
        check Alcotest.(option string) "inside" (Some "s") inside;
        check Alcotest.(option string) "restored" None (Budget.active ()));
    Alcotest.test_case "zero budget expires on entry" `Quick (fun () ->
        match Budget.with_budget ~step:"z" 0.0 (fun () -> ()) with
        | () -> Alcotest.fail "no expiry"
        | exception Budget.Expired (step, b) ->
            check Alcotest.string "step" "z" step;
            check (Alcotest.float 0.0) "budget" 0.0 b);
    Alcotest.test_case "generous budget lets the body run" `Quick (fun () ->
        check Alcotest.int "ran" 41
          (Budget.with_budget ~step:"g" 3600.0 (fun () -> 41)));
    Alcotest.test_case "remaining is positive under a fresh budget" `Quick
      (fun () ->
        Budget.with_budget ~step:"r" 3600.0 (fun () ->
            match Budget.remaining () with
            | Some r -> check Alcotest.bool "positive" true (r > 0.0)
            | None -> Alcotest.fail "no budget"));
    Alcotest.test_case "inner budget shadows, outer restored" `Quick (fun () ->
        Budget.with_budget ~step:"outer" 3600.0 (fun () ->
            (match
               Boundary.protect ~step:"inner" ~budget:0.0 (fun () -> ())
             with
            | Error (Run_report.Timeout _) -> ()
            | Ok () | Error _ -> Alcotest.fail "inner should time out");
            check Alcotest.(option string) "outer back" (Some "outer")
              (Budget.active ())));
  ]

let boundary_tests =
  [
    Alcotest.test_case "ok passes through" `Quick (fun () ->
        match Boundary.protect ~step:"s" (fun () -> 7) with
        | Ok 7 -> ()
        | _ -> Alcotest.fail "not ok");
    Alcotest.test_case "exception becomes Crashed" `Quick (fun () ->
        match Boundary.protect ~step:"s" (fun () -> failwith "boom") with
        | Error (Run_report.Crashed msg) ->
            check Alcotest.bool "message kept" true
              (Aladin_text.Strdist.contains ~needle:"boom" msg)
        | _ -> Alcotest.fail "not crashed");
    Alcotest.test_case "zero budget becomes Timeout" `Quick (fun () ->
        match Boundary.protect ~step:"s" ~budget:0.0 (fun () -> ()) with
        | Error (Run_report.Timeout b) -> check (Alcotest.float 0.0) "b" 0.0 b
        | _ -> Alcotest.fail "not a timeout");
    Alcotest.test_case "status names" `Quick (fun () ->
        check Alcotest.string "ok" "ok" (Boundary.status_of (Ok ()));
        check Alcotest.string "timeout" "timeout"
          (Boundary.status_of (Error (Run_report.Timeout 1.0)));
        check Alcotest.string "failed" "failed"
          (Boundary.status_of (Error (Run_report.Crashed "x"))));
  ]

let sample_report =
  {
    Run_report.source = "src\twith\nodd chars";
    quarantined = false;
    steps =
      [
        Run_report.step "import"
          (Run_report.Degraded
             [ { code = "record_error"; detail = "record 3: bad\tfield" } ]);
        Run_report.step ~seconds:1.25 "primary discovery" Run_report.Ok;
        Run_report.step "secondary discovery"
          (Run_report.Skipped (Run_report.Budget_exhausted 0.5));
        Run_report.step ~seconds:0.5
          ~children:
            [
              Run_report.step "xref pass" Run_report.Ok;
              Run_report.step "seq pass"
                (Run_report.Skipped Run_report.Budget_zero);
              Run_report.step "text pass"
                (Run_report.Skipped Run_report.Disabled);
              Run_report.step "onto pass"
                (Run_report.Failed (Run_report.Crashed "onto: bad term"));
            ]
          "link discovery"
          (Run_report.Degraded [ { code = "seq pass"; detail = "budget" } ]);
        Run_report.step "duplicate detection"
          (Run_report.Failed (Run_report.Timeout 2.0));
      ];
  }

let report_tests =
  [
    Alcotest.test_case "serialize roundtrip" `Quick (fun () ->
        match Run_report.deserialize (Run_report.serialize sample_report) with
        | Some r -> check Alcotest.bool "equal" true (r = sample_report)
        | None -> Alcotest.fail "did not deserialize");
    Alcotest.test_case "quarantined roundtrip" `Quick (fun () ->
        let q = { sample_report with Run_report.quarantined = true } in
        match Run_report.deserialize (Run_report.serialize q) with
        | Some r -> check Alcotest.bool "flag kept" true r.quarantined
        | None -> Alcotest.fail "did not deserialize");
    Alcotest.test_case "deserialize rejects garbage" `Quick (fun () ->
        check Alcotest.bool "none" true (Run_report.deserialize "junk" = None));
    Alcotest.test_case "clean predicate" `Quick (fun () ->
        check Alcotest.bool "sample not clean" false
          (Run_report.is_clean sample_report);
        let clean =
          {
            Run_report.source = "s";
            quarantined = false;
            steps =
              [ Run_report.step "a" Run_report.Ok;
                Run_report.step "b" (Run_report.Skipped Run_report.Disabled) ];
          }
        in
        check Alcotest.bool "ok+disabled clean" true (Run_report.is_clean clean));
    Alcotest.test_case "find descends into children" `Quick (fun () ->
        match Run_report.find sample_report "seq pass" with
        | Some s ->
            check Alcotest.bool "skipped" true
              (s.outcome = Run_report.Skipped Run_report.Budget_zero)
        | None -> Alcotest.fail "not found");
    Alcotest.test_case "render mentions every outcome" `Quick (fun () ->
        let doc = Run_report.render sample_report in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (Aladin_text.Strdist.contains ~needle doc))
          [ "degraded"; "skipped"; "failed"; "record_error" ]);
    Alcotest.test_case "repository persists reports" `Quick (fun () ->
        let repo = Aladin_metadata.Repository.create () in
        Aladin_metadata.Repository.set_run_report repo sample_report;
        let reloaded =
          Aladin_metadata.Repository.load (Aladin_metadata.Repository.save repo)
        in
        match Aladin_metadata.Repository.run_reports reloaded with
        | [ r ] -> check Alcotest.bool "roundtrip" true (r = sample_report)
        | rs -> Alcotest.fail (Printf.sprintf "%d reports" (List.length rs)));
    Alcotest.test_case "latest report per source wins" `Quick (fun () ->
        let repo = Aladin_metadata.Repository.create () in
        Aladin_metadata.Repository.set_run_report repo sample_report;
        Aladin_metadata.Repository.set_run_report repo
          { sample_report with quarantined = true };
        check Alcotest.int "one" 1
          (List.length (Aladin_metadata.Repository.run_reports repo)));
  ]

(* acceptance: a corrupted source in a multi-source integrate is
   quarantined while every other source integrates fully *)
let quarantine_tests =
  [
    Alcotest.test_case "unimportable source quarantined, rest integrate" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.create () in
        (match
           Aladin_formats.Import.import_string ~name:"garbage"
             "\000\001 not a biological format"
         with
        | Error err ->
            ignore (Warehouse.report_import_failure w ~source:"garbage" err)
        | Ok _ -> Alcotest.fail "garbage imported");
        List.iter (fun cat -> ignore (Warehouse.add_source w cat)) c.catalogs;
        (* the bad source is reported but not in the warehouse *)
        check Alcotest.bool "not a source" false
          (List.mem "garbage" (Warehouse.sources w));
        (match Warehouse.run_report w "garbage" with
        | Some r ->
            check Alcotest.bool "quarantined" true r.quarantined;
            check Alcotest.bool "import failed" true
              (match (List.hd r.steps).outcome with
              | Run_report.Failed _ -> true
              | _ -> false)
        | None -> Alcotest.fail "no report for garbage");
        (* everything else is fully integrated and clean *)
        check Alcotest.int "all sources in" (List.length c.catalogs)
          (List.length (Warehouse.sources w));
        check Alcotest.bool "links found" true (Warehouse.links w <> []);
        List.iter
          (fun cat ->
            let name = Aladin_relational.Catalog.name cat in
            match Warehouse.run_report w name with
            | Some r ->
                check Alcotest.bool (name ^ " clean") true
                  (Run_report.is_clean r)
            | None -> Alcotest.fail ("no report for " ^ name))
          c.catalogs);
    Alcotest.test_case "failed required step rolls the source back" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let config =
          { Config.default with
            budgets = { Config.no_budgets with primary = Some 0.0 } }
        in
        let w = Warehouse.create ~config () in
        let report = Warehouse.add_source w (List.hd c.catalogs) in
        check Alcotest.bool "quarantined" true report.quarantined;
        (match Run_report.find report "primary discovery" with
        | Some s ->
            check Alcotest.bool "timed out" true
              (s.outcome = Run_report.Failed (Run_report.Timeout 0.0))
        | None -> Alcotest.fail "no primary step");
        (match Run_report.find report "link discovery" with
        | Some s ->
            check Alcotest.bool "skipped as dependency" true
              (match s.outcome with
              | Run_report.Skipped (Run_report.Dependency_failed _) -> true
              | _ -> false)
        | None -> Alcotest.fail "no link step");
        (* rolled back: the warehouse is untouched *)
        check Alcotest.int "no sources" 0 (List.length (Warehouse.sources w));
        check Alcotest.bool "no profile" true
          (Warehouse.profile w (Aladin_relational.Catalog.name (List.hd c.catalogs))
          = None));
  ]

(* acceptance: a zero budget on the homology pass skips exactly that
   pass; every other pass produces byte-identical output *)
let budget_zero_tests =
  [
    Alcotest.test_case "seq budget 0 skips the pass, rest identical" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let normal = Warehouse.integrate c.catalogs in
        let throttled =
          Warehouse.integrate
            ~config:
              { Config.default with
                budgets = { Config.no_budgets with seq_pass = Some 0.0 } }
            c.catalogs
        in
        let keys ~keep_seq w =
          Warehouse.links w
          |> List.filter (fun (l : Aladin_links.Link.t) ->
                 keep_seq || l.kind <> Aladin_links.Link.Seq_similarity)
          |> List.map (fun (l : Aladin_links.Link.t) ->
                 Printf.sprintf "%s|%s|%s"
                   (Aladin_links.Objref.to_string l.src)
                   (Aladin_links.Objref.to_string l.dst)
                   (Aladin_links.Link.kind_name l.kind))
          |> List.sort String.compare
        in
        (* the homology pass found something in the normal run ... *)
        check Alcotest.bool "normal run has seq links" true
          (List.exists
             (fun (l : Aladin_links.Link.t) ->
               l.kind = Aladin_links.Link.Seq_similarity)
             (Warehouse.links normal));
        (* ... the throttled run has none ... *)
        check Alcotest.int "throttled run has no seq links" 0
          (List.length
             (List.filter
                (fun (l : Aladin_links.Link.t) ->
                  l.kind = Aladin_links.Link.Seq_similarity)
                (Warehouse.links throttled)));
        (* ... and everything else is byte-identical *)
        check
          Alcotest.(list string)
          "other links identical"
          (keys ~keep_seq:false normal)
          (keys ~keep_seq:true throttled);
        (* the skip is recorded on every source's report *)
        List.iter
          (fun (r : Run_report.t) ->
            match Run_report.find r "seq pass" with
            | Some s ->
                check Alcotest.bool (r.source ^ " seq skipped") true
                  (s.outcome = Run_report.Skipped Run_report.Budget_zero)
            | None -> Alcotest.fail ("no seq pass in " ^ r.source))
          (Warehouse.run_reports throttled));
    Alcotest.test_case "disabled pass is clean, budget-zero degrades" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let disabled =
          Warehouse.integrate
            ~config:
              { Config.default with
                linker = { Config.default.linker with enable_seq = false } }
            c.catalogs
        in
        List.iter
          (fun (r : Run_report.t) ->
            check Alcotest.bool (r.source ^ " clean") true
              (Run_report.is_clean r))
          (Warehouse.run_reports disabled));
  ]

let import_error_tests =
  [
    Alcotest.test_case "to_string carries source and kind" `Quick (fun () ->
        let e =
          Import_error.make ~source:"src" ~kind:Import_error.Parse "went wrong"
        in
        let s = Import_error.to_string e in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (Aladin_text.Strdist.contains ~needle s))
          [ "src"; "parse"; "went wrong" ]);
    Alcotest.test_case "record error rendering" `Quick (fun () ->
        let r = { Import_error.index = 4; reason = "short row" } in
        check Alcotest.bool "index" true
          (Aladin_text.Strdist.contains ~needle:"4"
             (Import_error.record_error_to_string r)));
  ]

let tests =
  [
    ("resilience.budget", budget_tests);
    ("resilience.boundary", boundary_tests);
    ("resilience.report", report_tests);
    ("resilience.quarantine", quarantine_tests);
    ("resilience.budget_zero", budget_zero_tests);
    ("resilience.import_error", import_error_tests);
  ]
