(* The resilience subsystem and its integration into the pipeline:
   budgets, error boundaries, typed run reports, quarantine. *)

open Aladin
open Aladin_resilience

let check = Alcotest.check

let small_corpus =
  lazy
    (Aladin_datagen.Corpus.generate
       {
         Aladin_datagen.Corpus.default_params with
         universe =
           { Aladin_datagen.Universe.default_params with n_proteins = 20;
             n_genes = 8; n_structures = 6; n_diseases = 3; n_terms = 6;
             n_families = 3 };
       })

let budget_tests =
  [
    Alcotest.test_case "active inside, cleared outside" `Quick (fun () ->
        check Alcotest.(option string) "outside" None (Budget.active ());
        let inside =
          Budget.with_budget ~step:"s" 60.0 (fun () -> Budget.active ())
        in
        check Alcotest.(option string) "inside" (Some "s") inside;
        check Alcotest.(option string) "restored" None (Budget.active ()));
    Alcotest.test_case "zero budget expires on entry" `Quick (fun () ->
        match Budget.with_budget ~step:"z" 0.0 (fun () -> ()) with
        | () -> Alcotest.fail "no expiry"
        | exception Budget.Expired (step, b) ->
            check Alcotest.string "step" "z" step;
            check (Alcotest.float 0.0) "budget" 0.0 b);
    Alcotest.test_case "generous budget lets the body run" `Quick (fun () ->
        check Alcotest.int "ran" 41
          (Budget.with_budget ~step:"g" 3600.0 (fun () -> 41)));
    Alcotest.test_case "remaining is positive under a fresh budget" `Quick
      (fun () ->
        Budget.with_budget ~step:"r" 3600.0 (fun () ->
            match Budget.remaining () with
            | Some r -> check Alcotest.bool "positive" true (r > 0.0)
            | None -> Alcotest.fail "no budget"));
    Alcotest.test_case "inner budget shadows, outer restored" `Quick (fun () ->
        Budget.with_budget ~step:"outer" 3600.0 (fun () ->
            (match
               Boundary.protect ~step:"inner" ~budget:0.0 (fun () -> ())
             with
            | Error (Run_report.Timeout _) -> ()
            | Ok () | Error _ -> Alcotest.fail "inner should time out");
            check Alcotest.(option string) "outer back" (Some "outer")
              (Budget.active ())));
  ]

let boundary_tests =
  [
    Alcotest.test_case "ok passes through" `Quick (fun () ->
        match Boundary.protect ~step:"s" (fun () -> 7) with
        | Ok 7 -> ()
        | _ -> Alcotest.fail "not ok");
    Alcotest.test_case "exception becomes Crashed" `Quick (fun () ->
        match Boundary.protect ~step:"s" (fun () -> failwith "boom") with
        | Error (Run_report.Crashed msg) ->
            check Alcotest.bool "message kept" true
              (Aladin_text.Strdist.contains ~needle:"boom" msg)
        | _ -> Alcotest.fail "not crashed");
    Alcotest.test_case "zero budget becomes Timeout" `Quick (fun () ->
        match Boundary.protect ~step:"s" ~budget:0.0 (fun () -> ()) with
        | Error (Run_report.Timeout b) -> check (Alcotest.float 0.0) "b" 0.0 b
        | _ -> Alcotest.fail "not a timeout");
    Alcotest.test_case "status names" `Quick (fun () ->
        check Alcotest.string "ok" "ok" (Boundary.status_of (Ok ()));
        check Alcotest.string "timeout" "timeout"
          (Boundary.status_of (Error (Run_report.Timeout 1.0)));
        check Alcotest.string "failed" "failed"
          (Boundary.status_of (Error (Run_report.Crashed "x"))));
  ]

let sample_report =
  {
    Run_report.source = "src\twith\nodd chars";
    quarantined = false;
    steps =
      [
        Run_report.step "import"
          (Run_report.Degraded
             [ { code = "record_error"; detail = "record 3: bad\tfield" } ]);
        Run_report.step ~seconds:1.25 "primary discovery" Run_report.Ok;
        Run_report.step "secondary discovery"
          (Run_report.Skipped (Run_report.Budget_exhausted 0.5));
        Run_report.step ~seconds:0.5
          ~children:
            [
              Run_report.step "xref pass" Run_report.Ok;
              Run_report.step "seq pass"
                (Run_report.Skipped Run_report.Budget_zero);
              Run_report.step "text pass"
                (Run_report.Skipped Run_report.Disabled);
              Run_report.step "onto pass"
                (Run_report.Failed (Run_report.Crashed "onto: bad term"));
            ]
          "link discovery"
          (Run_report.Degraded [ { code = "seq pass"; detail = "budget" } ]);
        Run_report.step "duplicate detection"
          (Run_report.Failed (Run_report.Timeout 2.0));
      ];
  }

let report_tests =
  [
    Alcotest.test_case "serialize roundtrip" `Quick (fun () ->
        match Run_report.deserialize (Run_report.serialize sample_report) with
        | Some r -> check Alcotest.bool "equal" true (r = sample_report)
        | None -> Alcotest.fail "did not deserialize");
    Alcotest.test_case "quarantined roundtrip" `Quick (fun () ->
        let q = { sample_report with Run_report.quarantined = true } in
        match Run_report.deserialize (Run_report.serialize q) with
        | Some r -> check Alcotest.bool "flag kept" true r.quarantined
        | None -> Alcotest.fail "did not deserialize");
    Alcotest.test_case "deserialize rejects garbage" `Quick (fun () ->
        check Alcotest.bool "none" true (Run_report.deserialize "junk" = None));
    Alcotest.test_case "clean predicate" `Quick (fun () ->
        check Alcotest.bool "sample not clean" false
          (Run_report.is_clean sample_report);
        let clean =
          {
            Run_report.source = "s";
            quarantined = false;
            steps =
              [ Run_report.step "a" Run_report.Ok;
                Run_report.step "b" (Run_report.Skipped Run_report.Disabled) ];
          }
        in
        check Alcotest.bool "ok+disabled clean" true (Run_report.is_clean clean));
    Alcotest.test_case "find descends into children" `Quick (fun () ->
        match Run_report.find sample_report "seq pass" with
        | Some s ->
            check Alcotest.bool "skipped" true
              (s.outcome = Run_report.Skipped Run_report.Budget_zero)
        | None -> Alcotest.fail "not found");
    Alcotest.test_case "render mentions every outcome" `Quick (fun () ->
        let doc = Run_report.render sample_report in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (Aladin_text.Strdist.contains ~needle doc))
          [ "degraded"; "skipped"; "failed"; "record_error" ]);
    Alcotest.test_case "repository persists reports" `Quick (fun () ->
        let repo = Aladin_metadata.Repository.create () in
        Aladin_metadata.Repository.set_run_report repo sample_report;
        let reloaded =
          Aladin_metadata.Repository.load (Aladin_metadata.Repository.save repo)
        in
        match Aladin_metadata.Repository.run_reports reloaded with
        | [ r ] -> check Alcotest.bool "roundtrip" true (r = sample_report)
        | rs -> Alcotest.fail (Printf.sprintf "%d reports" (List.length rs)));
    Alcotest.test_case "latest report per source wins" `Quick (fun () ->
        let repo = Aladin_metadata.Repository.create () in
        Aladin_metadata.Repository.set_run_report repo sample_report;
        Aladin_metadata.Repository.set_run_report repo
          { sample_report with quarantined = true };
        check Alcotest.int "one" 1
          (List.length (Aladin_metadata.Repository.run_reports repo)));
  ]

(* acceptance: a corrupted source in a multi-source integrate is
   quarantined while every other source integrates fully *)
let quarantine_tests =
  [
    Alcotest.test_case "unimportable source quarantined, rest integrate" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let w = Warehouse.create () in
        (match
           Aladin_formats.Import.import_string ~name:"garbage"
             "\000\001 not a biological format"
         with
        | Error err ->
            ignore (Warehouse.report_import_failure w ~source:"garbage" err)
        | Ok _ -> Alcotest.fail "garbage imported");
        List.iter (fun cat -> ignore (Warehouse.add_source w cat)) c.catalogs;
        (* the bad source is reported but not in the warehouse *)
        check Alcotest.bool "not a source" false
          (List.mem "garbage" (Warehouse.sources w));
        (match Warehouse.run_report w "garbage" with
        | Some r ->
            check Alcotest.bool "quarantined" true r.quarantined;
            check Alcotest.bool "import failed" true
              (match (List.hd r.steps).outcome with
              | Run_report.Failed _ -> true
              | _ -> false)
        | None -> Alcotest.fail "no report for garbage");
        (* everything else is fully integrated and clean *)
        check Alcotest.int "all sources in" (List.length c.catalogs)
          (List.length (Warehouse.sources w));
        check Alcotest.bool "links found" true (Warehouse.links w <> []);
        List.iter
          (fun cat ->
            let name = Aladin_relational.Catalog.name cat in
            match Warehouse.run_report w name with
            | Some r ->
                check Alcotest.bool (name ^ " clean") true
                  (Run_report.is_clean r)
            | None -> Alcotest.fail ("no report for " ^ name))
          c.catalogs);
    Alcotest.test_case "failed required step rolls the source back" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let config =
          { Config.default with
            budgets = { Config.no_budgets with primary = Some 0.0 } }
        in
        let w = Warehouse.create ~config () in
        let report = Warehouse.add_source w (List.hd c.catalogs) in
        check Alcotest.bool "quarantined" true report.quarantined;
        (match Run_report.find report "primary discovery" with
        | Some s ->
            check Alcotest.bool "timed out" true
              (s.outcome = Run_report.Failed (Run_report.Timeout 0.0))
        | None -> Alcotest.fail "no primary step");
        (match Run_report.find report "link discovery" with
        | Some s ->
            check Alcotest.bool "skipped as dependency" true
              (match s.outcome with
              | Run_report.Skipped (Run_report.Dependency_failed _) -> true
              | _ -> false)
        | None -> Alcotest.fail "no link step");
        (* rolled back: the warehouse is untouched *)
        check Alcotest.int "no sources" 0 (List.length (Warehouse.sources w));
        check Alcotest.bool "no profile" true
          (Warehouse.profile w (Aladin_relational.Catalog.name (List.hd c.catalogs))
          = None));
  ]

(* acceptance: a zero budget on the homology pass skips exactly that
   pass; every other pass produces byte-identical output *)
let budget_zero_tests =
  [
    Alcotest.test_case "seq budget 0 skips the pass, rest identical" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let normal = Warehouse.integrate c.catalogs in
        let throttled =
          Warehouse.integrate
            ~config:
              { Config.default with
                budgets = { Config.no_budgets with seq_pass = Some 0.0 } }
            c.catalogs
        in
        let keys ~keep_seq w =
          Warehouse.links w
          |> List.filter (fun (l : Aladin_links.Link.t) ->
                 keep_seq || l.kind <> Aladin_links.Link.Seq_similarity)
          |> List.map (fun (l : Aladin_links.Link.t) ->
                 Printf.sprintf "%s|%s|%s"
                   (Aladin_links.Objref.to_string l.src)
                   (Aladin_links.Objref.to_string l.dst)
                   (Aladin_links.Link.kind_name l.kind))
          |> List.sort String.compare
        in
        (* the homology pass found something in the normal run ... *)
        check Alcotest.bool "normal run has seq links" true
          (List.exists
             (fun (l : Aladin_links.Link.t) ->
               l.kind = Aladin_links.Link.Seq_similarity)
             (Warehouse.links normal));
        (* ... the throttled run has none ... *)
        check Alcotest.int "throttled run has no seq links" 0
          (List.length
             (List.filter
                (fun (l : Aladin_links.Link.t) ->
                  l.kind = Aladin_links.Link.Seq_similarity)
                (Warehouse.links throttled)));
        (* ... and everything else is byte-identical *)
        check
          Alcotest.(list string)
          "other links identical"
          (keys ~keep_seq:false normal)
          (keys ~keep_seq:true throttled);
        (* the skip is recorded on every source's report *)
        List.iter
          (fun (r : Run_report.t) ->
            match Run_report.find r "seq pass" with
            | Some s ->
                check Alcotest.bool (r.source ^ " seq skipped") true
                  (s.outcome = Run_report.Skipped Run_report.Budget_zero)
            | None -> Alcotest.fail ("no seq pass in " ^ r.source))
          (Warehouse.run_reports throttled));
    Alcotest.test_case "disabled pass is clean, budget-zero degrades" `Quick
      (fun () ->
        let c = Lazy.force small_corpus in
        let disabled =
          Warehouse.integrate
            ~config:
              { Config.default with
                linker = { Config.default.linker with enable_seq = false } }
            c.catalogs
        in
        List.iter
          (fun (r : Run_report.t) ->
            check Alcotest.bool (r.source ^ " clean") true
              (Run_report.is_clean r))
          (Warehouse.run_reports disabled));
  ]

let import_error_tests =
  [
    Alcotest.test_case "to_string carries source and kind" `Quick (fun () ->
        let e =
          Import_error.make ~source:"src" ~kind:Import_error.Parse "went wrong"
        in
        let s = Import_error.to_string e in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (Aladin_text.Strdist.contains ~needle s))
          [ "src"; "parse"; "went wrong" ]);
    Alcotest.test_case "record error rendering" `Quick (fun () ->
        let r = { Import_error.index = 4; reason = "short row" } in
        check Alcotest.bool "index" true
          (Aladin_text.Strdist.contains ~needle:"4"
             (Import_error.record_error_to_string r)));
  ]

(* --- satellite: Budget.remaining never goes negative --- *)

let budget_clamp_tests =
  [
    Alcotest.test_case "remaining is positive inside a live budget" `Quick
      (fun () ->
        let r =
          Budget.with_budget ~step:"live" 60.0 (fun () -> Budget.remaining ())
        in
        match r with
        | Some s -> check Alcotest.bool "0 < s <= 60" true (s > 0.0 && s <= 60.0)
        | None -> Alcotest.fail "no active budget");
    Alcotest.test_case "remaining is clamped at zero after expiry" `Quick
      (fun () ->
        let seen = ref None in
        (try
           Budget.with_budget ~step:"clamp" 0.0005 (fun () ->
               let t0 = Aladin_obs.Clock.now () in
               while Aladin_obs.Clock.now () -. t0 < 0.002 do
                 ()
               done;
               seen := Budget.remaining ())
         with Budget.Expired _ -> ());
        match !seen with
        | Some s ->
            check (Alcotest.float 0.0) "exactly zero, never negative" 0.0 s
        | None -> Alcotest.fail "no active budget");
  ]

(* --- satellite: fatal exceptions pass through the boundary --- *)

let boundary_fatal_tests =
  [
    Alcotest.test_case "Fault.Killed escapes the boundary" `Quick (fun () ->
        Alcotest.check_raises "killed" Aladin_store.Fault.Killed (fun () ->
            ignore
              (Boundary.protect ~step:"s" (fun () ->
                   raise Aladin_store.Fault.Killed))));
    Alcotest.test_case "Stack_overflow escapes the boundary" `Quick (fun () ->
        Alcotest.check_raises "overflow" Stack_overflow (fun () ->
            ignore (Boundary.protect ~step:"s" (fun () -> raise Stack_overflow))));
    Alcotest.test_case "Out_of_memory escapes the boundary" `Quick (fun () ->
        Alcotest.check_raises "oom" Out_of_memory (fun () ->
            ignore (Boundary.protect ~step:"s" (fun () -> raise Out_of_memory))));
    Alcotest.test_case "an ordinary exception is still captured" `Quick
      (fun () ->
        match Boundary.protect ~step:"s" (fun () -> failwith "boom") with
        | Error (Run_report.Crashed _) -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Crashed");
  ]

(* --- bounded retries with deterministic backoff --- *)

let fast_policy =
  { Retry.default_policy with attempts = 4; base_delay = 1e-5; max_delay = 1e-4 }

let transient_exn = Unix.Unix_error (Unix.EINTR, "read", "")

let retry_tests =
  [
    Alcotest.test_case "backoff is deterministic and bounded" `Quick (fun () ->
        let p = Retry.default_policy in
        let d1 = Retry.backoff_delay p ~step:"seq pass" ~attempt:2 in
        let d2 = Retry.backoff_delay p ~step:"seq pass" ~attempt:2 in
        check (Alcotest.float 0.0) "replayed identically" d1 d2;
        for a = 0 to 6 do
          let d = Retry.backoff_delay p ~step:"x" ~attempt:a in
          check Alcotest.bool "within jittered cap" true
            (d >= 0.0 && d <= p.max_delay *. (1.0 +. p.jitter))
        done);
    Alcotest.test_case "transient failures are retried" `Quick (fun () ->
        let calls = ref 0 in
        let v, attempts =
          Retry.run_counted ~policy:fast_policy ~step:"t" (fun () ->
              incr calls;
              if !calls < 3 then raise transient_exn else "ok")
        in
        check Alcotest.string "succeeded" "ok" v;
        check Alcotest.int "third attempt won" 3 attempts);
    Alcotest.test_case "permanent failures are not retried" `Quick (fun () ->
        let calls = ref 0 in
        (try
           Retry.run ~policy:fast_policy ~step:"p" (fun () ->
               incr calls;
               failwith "deterministic")
         with Failure _ -> ());
        check Alcotest.int "single attempt" 1 !calls);
    Alcotest.test_case "attempts are bounded" `Quick (fun () ->
        let calls = ref 0 in
        (try
           Retry.run ~policy:fast_policy ~step:"b" (fun () ->
               incr calls;
               raise transient_exn)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        check Alcotest.int "policy.attempts calls" fast_policy.attempts !calls);
    Alcotest.test_case "kills are never retried" `Quick (fun () ->
        let calls = ref 0 in
        (try
           Retry.run ~policy:fast_policy ~step:"k" (fun () ->
               incr calls;
               raise Aladin_store.Fault.Killed)
         with Aladin_store.Fault.Killed -> ());
        check Alcotest.int "single attempt" 1 !calls);
  ]

(* --- kill-anywhere resumable integration (ISSUE 9 acceptance) --- *)

module Fault = Aladin_store.Fault

let fresh_dir tag =
  let d = Filename.temp_file "aladin-res" tag in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let rm_rf path = if Sys.file_exists path then rm_rf path

let kr_catalogs () =
  [
    Aladin_formats.Dump.load ~name:"uniprot"
      [ ( "entry",
          "acc,name,description\nP10001,alpha,first protein of the set\n\
           P10002,beta,second protein of the set\n\
           P10003,gamma,third protein of the set\n" ) ];
    Aladin_formats.Dump.load ~name:"pdb"
      [ ("item", "id,acc,score\n1,P10001,0.5\n2,P10003,1.5\n") ];
  ]

let links_csv w = Aladin_access.Link_export.to_csv (Warehouse.links w)

let journaled_exn ~journal catalogs =
  match Warehouse.integrate_journaled ~journal catalogs with
  | Ok (w, info) -> (w, info)
  | Error e -> Alcotest.fail ("integrate_journaled: " ^ e)

let resume_tests =
  [
    Alcotest.test_case "journaled run matches plain integrate" `Quick
      (fun () ->
        let expect = links_csv (Warehouse.integrate (kr_catalogs ())) in
        let dir = fresh_dir "jeq" in
        let w, (info : Warehouse.resume_info) =
          journaled_exn ~journal:dir (kr_catalogs ())
        in
        check Alcotest.string "links identical" expect (links_csv w);
        check
          Alcotest.(list string)
          "all executed" [ "uniprot"; "pdb" ] info.executed_sources;
        rm_rf dir);
    Alcotest.test_case "kill at every step boundary, resume byte-identical"
      `Slow (fun () ->
        let expect = links_csv (Warehouse.integrate (kr_catalogs ())) in
        (* count the boundaries on a clean run *)
        let probe = fresh_dir "jprobe" in
        Fault.reset_counters ();
        ignore (journaled_exn ~journal:probe (kr_catalogs ()));
        let _, _, steps_total = Fault.counters () in
        rm_rf probe;
        check Alcotest.bool "several boundaries" true (steps_total >= 6);
        for k = 0 to steps_total - 1 do
          let dir = fresh_dir "jkill" in
          Fault.reset_counters ();
          Fault.arm_step ~index:k;
          (match Warehouse.integrate_journaled ~journal:dir (kr_catalogs ())
           with
          | Ok _ | Error _ ->
              Fault.disarm ();
              Alcotest.fail (Printf.sprintf "step %d: expected a kill" k)
          | exception Fault.Killed -> Fault.disarm ());
          let w, (info : Warehouse.resume_info) =
            journaled_exn ~journal:dir (kr_catalogs ())
          in
          check Alcotest.string
            (Printf.sprintf "links identical after kill at %d" k)
            expect (links_csv w);
          List.iter
            (fun s ->
              check Alcotest.bool
                (Printf.sprintf "%s covered after kill at %d" s k)
                true
                (List.mem s (info.resumed_sources @ info.executed_sources)))
            [ "uniprot"; "pdb" ];
          rm_rf dir
        done);
    Alcotest.test_case "restored reports are flagged resumed" `Quick
      (fun () ->
        let dir = fresh_dir "jflag" in
        (* kill at the second source's first boundary: uniprot committed *)
        Fault.reset_counters ();
        Fault.arm_step ~index:3;
        (match Warehouse.integrate_journaled ~journal:dir (kr_catalogs ())
         with
        | Ok _ | Error _ ->
            Fault.disarm ();
            Alcotest.fail "expected a kill"
        | exception Fault.Killed -> Fault.disarm ());
        let w, (info : Warehouse.resume_info) =
          journaled_exn ~journal:dir (kr_catalogs ())
        in
        check
          Alcotest.(list string)
          "uniprot restored" [ "uniprot" ] info.resumed_sources;
        check
          Alcotest.(list string)
          "pdb recomputed" [ "pdb" ] info.executed_sources;
        (match Warehouse.run_report w "uniprot" with
        | Some r ->
            check Alcotest.bool "every step flagged" true
              (List.for_all
                 (fun (s : Run_report.step_report) -> s.resumed)
                 r.steps)
        | None -> Alcotest.fail "no restored report for uniprot");
        (match Warehouse.run_report w "pdb" with
        | Some r ->
            check Alcotest.bool "recomputed steps not flagged" true
              (List.for_all
                 (fun (s : Run_report.step_report) -> not s.resumed)
                 r.steps)
        | None -> Alcotest.fail "no report for pdb");
        rm_rf dir);
    Alcotest.test_case "torn trailing journal record salvaged on resume"
      `Quick (fun () ->
        let expect = links_csv (Warehouse.integrate (kr_catalogs ())) in
        let dir = fresh_dir "jtorn" in
        ignore (journaled_exn ~journal:dir (kr_catalogs ()));
        (* simulate an append killed mid-record: a CRC-less fragment *)
        let oc =
          open_out_gen
            [ Open_append; Open_binary ] 0o644
            (Filename.concat dir "JOURNAL")
        in
        output_string oc "deadbeef\tintent\t9";
        close_out oc;
        let w, (info : Warehouse.resume_info) =
          journaled_exn ~journal:dir (kr_catalogs ())
        in
        check Alcotest.int "torn record counted" 1 info.dropped_records;
        check
          Alcotest.(list string)
          "both sources restored" [ "uniprot"; "pdb" ] info.resumed_sources;
        check Alcotest.string "links identical" expect (links_csv w);
        rm_rf dir);
    Alcotest.test_case "resume refuses a changed source" `Quick (fun () ->
        let dir = fresh_dir "jdig" in
        Fault.reset_counters ();
        Fault.arm_step ~index:3;
        (match Warehouse.integrate_journaled ~journal:dir (kr_catalogs ())
         with
        | Ok _ | Error _ ->
            Fault.disarm ();
            Alcotest.fail "expected a kill"
        | exception Fault.Killed -> Fault.disarm ());
        let changed =
          [
            List.hd (kr_catalogs ());
            Aladin_formats.Dump.load ~name:"pdb"
              [ ("item", "id,acc,score\n1,P10002,9.9\n") ];
          ]
        in
        (match Warehouse.integrate_journaled ~journal:dir changed with
        | Error e ->
            check Alcotest.bool "names the digest mismatch" true
              (Aladin_text.Strdist.contains ~needle:"digest" e)
        | Ok _ -> Alcotest.fail "expected a digest-mismatch refusal");
        rm_rf dir);
    Alcotest.test_case "journal_status names uncommitted work" `Quick
      (fun () ->
        let dir = fresh_dir "jstat" in
        Fault.reset_counters ();
        Fault.arm_step ~index:3;
        (match Warehouse.integrate_journaled ~journal:dir (kr_catalogs ())
         with
        | Ok _ | Error _ ->
            Fault.disarm ();
            Alcotest.fail "expected a kill"
        | exception Fault.Killed -> Fault.disarm ());
        (match Warehouse.journal_status dir with
        | Ok entries ->
            check
              Alcotest.(list (pair string bool))
              "committed flags"
              [ ("uniprot", true); ("pdb", false) ]
              (List.map
                 (fun (e : Warehouse.journal_source) ->
                   (e.js_name, e.js_committed))
                 entries)
        | Error e -> Alcotest.fail e);
        rm_rf dir);
  ]

let tests =
  [
    ("resilience.budget", budget_tests);
    ("resilience.budget_clamp", budget_clamp_tests);
    ("resilience.boundary", boundary_tests);
    ("resilience.boundary_fatal", boundary_fatal_tests);
    ("resilience.retry", retry_tests);
    ("resilience.report", report_tests);
    ("resilience.quarantine", quarantine_tests);
    ("resilience.budget_zero", budget_zero_tests);
    ("resilience.import_error", import_error_tests);
    ("resilience.resume", resume_tests);
  ]
