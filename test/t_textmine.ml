open Aladin_text

let check = Alcotest.check

let tokenize_tests =
  [
    Alcotest.test_case "words split and lowercase" `Quick (fun () ->
        check Alcotest.(list string) "words" [ "atp"; "binding"; "p53" ]
          (Tokenize.words "ATP-binding, p53!"));
    Alcotest.test_case "words_raw keeps case" `Quick (fun () ->
        check Alcotest.(list string) "raw" [ "BRCA2"; "kinase" ]
          (Tokenize.words_raw "BRCA2 kinase"));
    Alcotest.test_case "stopwords" `Quick (fun () ->
        check Alcotest.bool "the" true (Tokenize.stopword "The");
        check Alcotest.bool "putative" true (Tokenize.stopword "putative");
        check Alcotest.bool "kinase" false (Tokenize.stopword "kinase"));
    Alcotest.test_case "terms filter stopwords and singles" `Quick (fun () ->
        check Alcotest.(list string) "terms" [ "kinase"; "binding" ]
          (Tokenize.terms "the kinase a binding"));
    Alcotest.test_case "ngrams" `Quick (fun () ->
        check Alcotest.(list string) "bigrams" [ "ab"; "bc" ] (Tokenize.ngrams ~n:2 "abc");
        check Alcotest.(list string) "too short" [] (Tokenize.ngrams ~n:5 "abc"));
    Alcotest.test_case "jaccard" `Quick (fun () ->
        check (Alcotest.float 0.001) "identical" 1.0
          (Tokenize.jaccard "protein kinase" "protein kinase");
        check (Alcotest.float 0.001) "disjoint" 0.0
          (Tokenize.jaccard "protein kinase" "gene expression");
        check (Alcotest.float 0.001) "both empty" 1.0 (Tokenize.jaccard "" ""));
  ]

let strdist_tests =
  [
    Alcotest.test_case "levenshtein known" `Quick (fun () ->
        check Alcotest.int "kitten" 3 (Strdist.levenshtein "kitten" "sitting");
        check Alcotest.int "same" 0 (Strdist.levenshtein "abc" "abc");
        check Alcotest.int "to empty" 3 (Strdist.levenshtein "abc" ""));
    Alcotest.test_case "bounded" `Quick (fun () ->
        check Alcotest.(option int) "within" (Some 3)
          (Strdist.levenshtein_bounded ~bound:3 "kitten" "sitting");
        check Alcotest.(option int) "exceeds" None
          (Strdist.levenshtein_bounded ~bound:2 "kitten" "sitting");
        check Alcotest.(option int) "length prune" None
          (Strdist.levenshtein_bounded ~bound:1 "ab" "abcdef"));
    Alcotest.test_case "similarity bounds" `Quick (fun () ->
        check (Alcotest.float 0.001) "same" 1.0 (Strdist.similarity "x" "x");
        check (Alcotest.float 0.001) "empty" 1.0 (Strdist.similarity "" "");
        check (Alcotest.float 0.001) "disjoint" 0.0 (Strdist.similarity "ab" "cd"));
    Alcotest.test_case "jaro_winkler known" `Quick (fun () ->
        let jw = Strdist.jaro_winkler "MARTHA" "MARHTA" in
        check Alcotest.bool "martha" true (jw > 0.95 && jw < 0.97);
        check (Alcotest.float 0.001) "identical" 1.0 (Strdist.jaro_winkler "DWAYNE" "DWAYNE");
        check (Alcotest.float 0.001) "empty vs nonempty" 0.0 (Strdist.jaro_winkler "" "x"));
    Alcotest.test_case "dice_bigrams" `Quick (fun () ->
        check (Alcotest.float 0.001) "identical" 1.0 (Strdist.dice_bigrams "night" "night");
        check (Alcotest.float 0.001) "disjoint" 0.0 (Strdist.dice_bigrams "abc" "xyz"));
    Alcotest.test_case "longest_common_substring" `Quick (fun () ->
        check Alcotest.string "lcs" "P11140"
          (Strdist.longest_common_substring "Uniprot:P11140" "P11140");
        check Alcotest.string "empty" "" (Strdist.longest_common_substring "" "abc"));
    Alcotest.test_case "contains" `Quick (fun () ->
        check Alcotest.bool "yes" true (Strdist.contains ~needle:"GT" "ACGT");
        check Alcotest.bool "no" false (Strdist.contains ~needle:"TT" "ACGT");
        check Alcotest.bool "empty" true (Strdist.contains ~needle:"" "x"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein symmetric" ~count:100
         QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 12))
                   (string_of_size (QCheck.Gen.int_range 0 12)))
         (fun (a, b) -> Strdist.levenshtein a b = Strdist.levenshtein b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein identity" ~count:100
         QCheck.(string_of_size (QCheck.Gen.int_range 0 15))
         (fun s -> Strdist.levenshtein s s = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein triangle" ~count:100
         QCheck.(triple (string_of_size (QCheck.Gen.int_range 0 8))
                   (string_of_size (QCheck.Gen.int_range 0 8))
                   (string_of_size (QCheck.Gen.int_range 0 8)))
         (fun (a, b, c) ->
           Strdist.levenshtein a c <= Strdist.levenshtein a b + Strdist.levenshtein b c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"jaro_winkler in [0,1]" ~count:100
         QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 12))
                   (string_of_size (QCheck.Gen.int_range 0 12)))
         (fun (a, b) ->
           let s = Strdist.jaro_winkler a b in
           s >= 0.0 && s <= 1.0));
  ]

let tfidf_tests =
  [
    Alcotest.test_case "cosine identical" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "protein kinase binding";
        Tfidf.corpus_add c ~doc_id:"b" "unrelated gene expression stuff";
        let v = Tfidf.vector_of_text c "protein kinase binding" in
        check (Alcotest.float 0.001) "self" 1.0 (Tfidf.cosine v v));
    Alcotest.test_case "cosine disjoint" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "alpha beta";
        Tfidf.corpus_add c ~doc_id:"b" "gamma delta";
        match (Tfidf.vector_of_doc c "a", Tfidf.vector_of_doc c "b") with
        | Some va, Some vb -> check (Alcotest.float 0.001) "zero" 0.0 (Tfidf.cosine va vb)
        | _ -> Alcotest.fail "missing vectors");
    Alcotest.test_case "similar_docs excludes self" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "zinc finger domain";
        Tfidf.corpus_add c ~doc_id:"b" "zinc finger domain protein";
        Tfidf.corpus_add c ~doc_id:"c" "completely different words here";
        let sims = Tfidf.similar_docs c ~doc_id:"a" ~min_sim:0.3 in
        check Alcotest.bool "b found" true (List.mem_assoc "b" sims);
        check Alcotest.bool "self absent" false (List.mem_assoc "a" sims);
        check Alcotest.bool "c absent" false (List.mem_assoc "c" sims));
    Alcotest.test_case "corpus_add replaces" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "first version";
        Tfidf.corpus_add c ~doc_id:"a" "second version";
        check Alcotest.int "size" 1 (Tfidf.corpus_size c));
    Alcotest.test_case "idf downweights common terms" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "common rare1";
        Tfidf.corpus_add c ~doc_id:"b" "common rare2";
        Tfidf.corpus_add c ~doc_id:"c" "common rare3";
        let v = Tfidf.vector_of_text c "common rare1" in
        match Tfidf.top_terms v 2 with
        | (top, _) :: _ -> check Alcotest.string "rare on top" "rare1" top
        | [] -> Alcotest.fail "empty vector");
    Alcotest.test_case "unknown doc" `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        check Alcotest.bool "none" true (Tfidf.vector_of_doc c "zz" = None));
  ]

(* a small but non-trivial corpus: overlapping vocabulary clusters, one
   term in every document, singleton terms, an empty-ish doc *)
let pairs_corpus () =
  let c = Tfidf.corpus_create () in
  List.iter
    (fun (id, text) -> Tfidf.corpus_add c ~doc_id:id text)
    [ ("d0", "shared alpha kinase domain repair");
      ("d1", "shared alpha kinase domain signaling");
      ("d2", "shared beta transporter channel membrane");
      ("d3", "shared beta transporter channel gating");
      ("d4", "shared gamma unique1 singleton marker");
      ("d5", "shared gamma receptor binding calcium");
      ("d6", "shared zeta totally separate vocabulary cluster") ];
  c

(* exhaustive reference: every unordered pair scored with the naive
   hashtable vectors *)
let naive_all_pairs c =
  let ids = List.sort String.compare (Tfidf.doc_ids c) in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if String.compare a b < 0 then
            match (Tfidf.vector_of_doc c a, Tfidf.vector_of_doc c b) with
            | Some va, Some vb -> Some (a, b, Tfidf.cosine va vb)
            | _ -> None
          else None)
        ids)
    ids

let prepared_tests =
  [
    Alcotest.test_case "similar_docs prepared == naive scores" `Quick (fun () ->
        let c = pairs_corpus () in
        List.iter
          (fun id ->
            let naive =
              match Tfidf.vector_of_doc c id with
              | None -> []
              | Some v ->
                  List.filter_map
                    (fun other ->
                      if other = id then None
                      else
                        match Tfidf.vector_of_doc c other with
                        | Some vo ->
                            let s = Tfidf.cosine v vo in
                            if s >= 0.05 then Some (other, s) else None
                        | None -> None)
                    (Tfidf.doc_ids c)
                  |> List.sort (fun (ida, a) (idb, b) ->
                         match Float.compare b a with
                         | 0 -> String.compare ida idb
                         | cmp -> cmp)
            in
            let prepared = Tfidf.similar_docs c ~doc_id:id ~min_sim:0.05 in
            check Alcotest.int
              (Printf.sprintf "%s: same count" id)
              (List.length naive) (List.length prepared);
            List.iter2
              (fun (ida, sa) (idb, sb) ->
                check Alcotest.string (id ^ ": same doc") ida idb;
                check (Alcotest.float 1e-9) (id ^ ": same score") sa sb)
              naive prepared)
          (List.sort String.compare (Tfidf.doc_ids c)));
    Alcotest.test_case "similar_docs reports each pair from both sides" `Quick
      (fun () ->
        let c = pairs_corpus () in
        check Alcotest.bool "d0 sees d1" true
          (List.mem_assoc "d1" (Tfidf.similar_docs c ~doc_id:"d0" ~min_sim:0.1));
        check Alcotest.bool "d1 sees d0" true
          (List.mem_assoc "d0" (Tfidf.similar_docs c ~doc_id:"d1" ~min_sim:0.1)));
    Alcotest.test_case "candidate join is complete vs exhaustive" `Quick
      (fun () ->
        let c = pairs_corpus () in
        let min_sim = 0.05 in
        let expected =
          List.filter (fun (_, _, s) -> s >= min_sim) (naive_all_pairs c)
          |> List.map (fun (a, b, _) -> (a, b))
        in
        let found =
          Tfidf.similar_pairs (Tfidf.prepare c) ~min_sim
          |> List.map (fun (a, b, _) -> (a, b))
        in
        List.iter
          (fun (a, b) ->
            check Alcotest.bool (Printf.sprintf "(%s,%s) found" a b) true
              (List.mem (a, b) found))
          expected;
        check Alcotest.int "no extra pairs" (List.length expected)
          (List.length found));
    Alcotest.test_case "similar_pairs scores match naive cosine" `Quick
      (fun () ->
        let c = pairs_corpus () in
        let naive = naive_all_pairs c in
        Tfidf.similar_pairs (Tfidf.prepare c) ~min_sim:0.01
        |> List.iter (fun (a, b, s) ->
               let (_, _, expected) =
                 List.find (fun (x, y, _) -> x = a && y = b) naive
               in
               check (Alcotest.float 1e-9) (a ^ "-" ^ b) expected s));
    Alcotest.test_case "each canonical pair exactly once, i < j" `Quick
      (fun () ->
        let c = pairs_corpus () in
        let pairs = Tfidf.similar_pairs (Tfidf.prepare c) ~min_sim:0.01 in
        List.iter
          (fun (a, b, _) ->
            check Alcotest.bool "ordered" true (String.compare a b < 0))
          pairs;
        let keys = List.map (fun (a, b, _) -> (a, b)) pairs in
        check Alcotest.int "unique" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    Alcotest.test_case "range concatenation equals full join" `Quick (fun () ->
        let c = pairs_corpus () in
        let p = Tfidf.prepare c in
        let n = Tfidf.prepared_docs p in
        let full = Tfidf.similar_pairs p ~min_sim:0.01 in
        (* odd, uneven boundaries on purpose *)
        List.iter
          (fun cuts ->
            let rec ranges lo = function
              | [] -> if lo < n then [ (lo, n) ] else []
              | c :: rest -> (lo, min c n) :: ranges (min c n) rest
            in
            let sharded =
              List.concat_map
                (fun (lo, hi) -> Tfidf.similar_pairs_range p ~lo ~hi ~min_sim:0.01)
                (ranges 0 cuts)
            in
            check Alcotest.bool "equal" true (sharded = full))
          [ [ 1 ]; [ 2; 3 ]; [ 1; 2; 3; 4; 5; 6 ]; [ 4 ] ]);
    Alcotest.test_case "df ceiling: all-docs term is weightless and skipped"
      `Quick (fun () ->
        (* "shared" appears in every doc of pairs_corpus: idf = ln(N/N) = 0,
           so a pair overlapping ONLY on it has cosine 0 and skipping it as
           a discriminator loses nothing *)
        let c = pairs_corpus () in
        let p = Tfidf.prepare c in
        check Alcotest.int "default ceiling is N-1"
          (Tfidf.prepared_docs p - 1)
          (Tfidf.default_df_ceiling p);
        let found = Tfidf.similar_pairs p ~min_sim:0.0001 in
        check Alcotest.bool "d6 pairs with nobody" true
          (List.for_all (fun (a, b, _) -> a <> "d6" && b <> "d6") found));
    Alcotest.test_case "df ceiling: singleton term still contributes weight"
      `Quick (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "linker unique1";
        Tfidf.corpus_add c ~doc_id:"b" "linker unique2";
        Tfidf.corpus_add c ~doc_id:"c" "other vocabulary";
        (* a and b share only "linker" (df 2 of 3); their singleton terms
           never generate candidates (posting length 1) but still weigh the
           cosine down below 1.0 *)
        match Tfidf.similar_pairs (Tfidf.prepare c) ~min_sim:0.0001 with
        | [ ("a", "b", s) ] ->
            check Alcotest.bool "0 < s < 1" true (s > 0.0 && s < 1.0)
        | other ->
            Alcotest.fail (Printf.sprintf "%d pairs" (List.length other)));
    Alcotest.test_case "df ceiling: lowering it prunes candidates" `Quick
      (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "frequent rare1";
        Tfidf.corpus_add c ~doc_id:"b" "frequent rare2";
        Tfidf.corpus_add c ~doc_id:"c" "frequent rare3";
        Tfidf.corpus_add c ~doc_id:"d" "unrelated stuff";
        let p = Tfidf.prepare c in
        (* "frequent" has df 3 < N: a discriminator at the default ceiling,
           pruned at ceiling 2 — the a/b/c pairs disappear because they
           share nothing else *)
        check Alcotest.int "default finds the 3 pairs" 3
          (List.length (Tfidf.similar_pairs p ~min_sim:0.0001));
        check Alcotest.int "ceiling 2 prunes them" 0
          (List.length (Tfidf.similar_pairs ~df_ceiling:2 p ~min_sim:0.0001)));
    Alcotest.test_case "corpus_add invalidates the prepared cache" `Quick
      (fun () ->
        let c = Tfidf.corpus_create () in
        Tfidf.corpus_add c ~doc_id:"a" "alpha kinase";
        Tfidf.corpus_add c ~doc_id:"b" "alpha kinase";
        Tfidf.corpus_add c ~doc_id:"z" "background vocabulary so idf is positive";
        check Alcotest.bool "similar before" true
          (List.mem_assoc "b" (Tfidf.similar_docs c ~doc_id:"a" ~min_sim:0.5));
        Tfidf.corpus_add c ~doc_id:"b" "totally different now";
        check Alcotest.bool "not similar after replace" false
          (List.mem_assoc "b" (Tfidf.similar_docs c ~doc_id:"a" ~min_sim:0.5)));
    Alcotest.test_case "similar_docs min_sim 0 keeps zero-cosine docs" `Quick
      (fun () ->
        let c = pairs_corpus () in
        (* the historical contract: a zero threshold reports every other
           document, including non-overlapping ones *)
        check Alcotest.int "all others" 6
          (List.length (Tfidf.similar_docs c ~doc_id:"d6" ~min_sim:0.0)));
  ]

let inverted_tests =
  [
    Alcotest.test_case "search finds and ranks" `Quick (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"d1" ~field:"desc" "kinase kinase kinase";
        Inverted_index.add idx ~doc_id:"d2" ~field:"desc" "kinase once, other words";
        (match Inverted_index.search idx "kinase" with
        | first :: _ :: _ -> check Alcotest.string "tf wins" "d1" first.doc_id
        | other -> Alcotest.fail (Printf.sprintf "%d results" (List.length other))));
    Alcotest.test_case "field restriction" `Quick (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"d1" ~field:"name" "alpha";
        Inverted_index.add idx ~doc_id:"d2" ~field:"desc" "alpha";
        let hits = Inverted_index.search idx ~field:"name" "alpha" in
        check Alcotest.(list string) "only d1" [ "d1" ]
          (List.map (fun (r : Inverted_index.query_result) -> r.doc_id) hits));
    Alcotest.test_case "multi-term coverage bonus" `Quick (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"both" ~field:"f" "alpha beta";
        Inverted_index.add idx ~doc_id:"one" ~field:"f" "alpha gamma";
        (match Inverted_index.search idx "alpha beta" with
        | first :: _ -> check Alcotest.string "both wins" "both" first.doc_id
        | [] -> Alcotest.fail "no results"));
    Alcotest.test_case "phrase_matches conjunctive" `Quick (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"d1" ~field:"f" "alpha beta";
        Inverted_index.add idx ~doc_id:"d2" ~field:"f" "alpha";
        check Alcotest.(list string) "d1 only" [ "d1" ]
          (Inverted_index.phrase_matches idx "alpha beta"));
    Alcotest.test_case "limit respected" `Quick (fun () ->
        let idx = Inverted_index.create () in
        for i = 1 to 30 do
          Inverted_index.add idx ~doc_id:(string_of_int i) ~field:"f" "shared"
        done;
        check Alcotest.int "limit" 5
          (List.length (Inverted_index.search idx ~limit:5 "shared")));
    Alcotest.test_case "counts" `Quick (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"d" ~field:"f" "alpha beta";
        check Alcotest.int "docs" 1 (Inverted_index.doc_count idx);
        check Alcotest.int "terms" 2 (Inverted_index.term_count idx));
    Alcotest.test_case "idf counts distinct docs across fields" `Quick
      (fun () ->
        let idx = Inverted_index.create () in
        (* same doc indexed under two fields: two postings, ONE document *)
        Inverted_index.add idx ~doc_id:"d1" ~field:"name" "alpha";
        Inverted_index.add idx ~doc_id:"d1" ~field:"desc" "alpha";
        Inverted_index.add idx ~doc_id:"d2" ~field:"desc" "beta";
        check (Alcotest.float 1e-9) "df 1 of 2" (log (1.0 +. 2.0))
          (Inverted_index.idf idx "alpha");
        check (Alcotest.float 1e-9) "absent term" 0.0
          (Inverted_index.idf idx "nosuch"));
    Alcotest.test_case "phrase_matches across fields stays conjunctive" `Quick
      (fun () ->
        let idx = Inverted_index.create () in
        Inverted_index.add idx ~doc_id:"d1" ~field:"a" "alpha";
        Inverted_index.add idx ~doc_id:"d1" ~field:"b" "beta";
        Inverted_index.add idx ~doc_id:"d2" ~field:"a" "alpha beta";
        Inverted_index.add idx ~doc_id:"d3" ~field:"a" "beta";
        check Alcotest.(list string) "d1 d2" [ "d1"; "d2" ]
          (List.sort String.compare (Inverted_index.phrase_matches idx "alpha beta")));
  ]

let entity_tests =
  [
    Alcotest.test_case "dictionary match" `Quick (fun () ->
        let t = Entity_recog.create () in
        Entity_recog.add_dictionary t [ "brca2" ];
        match Entity_recog.recognize t "the BRCA2 gene" with
        | [ m ] ->
            check Alcotest.string "surface" "BRCA2" m.surface;
            check (Alcotest.float 0.001) "score" 1.0 m.score
        | ms -> Alcotest.fail (Printf.sprintf "%d mentions" (List.length ms)));
    Alcotest.test_case "surface scores" `Quick (fun () ->
        check Alcotest.bool "BRCA2 high" true (Entity_recog.surface_score "BRCA2" >= 0.5);
        check Alcotest.bool "p53 high" true (Entity_recog.surface_score "p53" >= 0.5);
        check (Alcotest.float 0.001) "plain word" 0.0 (Entity_recog.surface_score "protein");
        check (Alcotest.float 0.001) "stopword" 0.0 (Entity_recog.surface_score "the"));
    Alcotest.test_case "min_score filters" `Quick (fun () ->
        let t = Entity_recog.create () in
        let ms = Entity_recog.recognize t ~min_score:0.99 "maybe CFTR5 here" in
        check Alcotest.int "none" 0 (List.length ms));
    Alcotest.test_case "token positions" `Quick (fun () ->
        let t = Entity_recog.create () in
        Entity_recog.add_dictionary t [ "xyz1" ];
        match Entity_recog.recognize t "first second XYZ1" with
        | [ m ] -> check Alcotest.int "index" 2 m.start
        | ms -> Alcotest.fail (Printf.sprintf "%d mentions" (List.length ms)));
    Alcotest.test_case "recognize_dictionary == recognize-then-filter" `Quick
      (fun () ->
        let t = Entity_recog.create () in
        Entity_recog.add_dictionary t [ "brca2"; "p53"; "the" ];
        let texts =
          [ "the BRCA2 gene regulates p53 and CFTR5 signaling";
            "no hits at all here";
            "p53 P53 brca2 BRCA2 surface-only TOK9X";
            "" ]
        in
        List.iter
          (fun text ->
            let old_path =
              Entity_recog.recognize t ~min_score:1.0 text
              (* old linking path: score everything, then keep only
                 dictionary members at the lookup *)
              |> List.filter (fun (m : Entity_recog.mention) ->
                     List.mem
                       (String.lowercase_ascii m.surface)
                       [ "brca2"; "p53"; "the" ])
            in
            let fast = Entity_recog.recognize_dictionary t text in
            check Alcotest.int (text ^ ": count") (List.length old_path)
              (List.length fast);
            List.iter2
              (fun (a : Entity_recog.mention) (b : Entity_recog.mention) ->
                check Alcotest.string "surface" a.surface b.surface;
                check Alcotest.int "start" a.start b.start;
                check (Alcotest.float 1e-9) "score" a.score b.score)
              old_path fast)
          texts);
  ]

let tests =
  [
    ("textmine.tokenize", tokenize_tests);
    ("textmine.strdist", strdist_tests);
    ("textmine.tfidf", tfidf_tests);
    ("textmine.tfidf_prepared", prepared_tests);
    ("textmine.inverted_index", inverted_tests);
    ("textmine.entity_recog", entity_tests);
  ]
